"""Segment-timing perf suite for the training hot path.

Times every layer this repository's hot-path work touched — im2col
extraction, RPQ projection growth, the >62-bit Hitmap path, a full
training step and a functional-sweep reference config — against the
seed implementations that are kept in-tree as oracles, and emits a
``BENCH_perf.json`` trajectory artifact so future PRs have a committed
perf baseline to regress against.

"Before" numbers replay the three seed behaviours kept in-tree as
oracles — the dominant costs this overhaul removed:

* ``im2col_reference`` — the loop-filled extraction the strided rewrite
  replaced (still the differential oracle for ``im2col``);
* ``seed_pack_bits`` — the object-dtype per-row packing loop that
  >62-bit signatures used before the multi-word representation (which
  also routes the Hitmap through the sequential object-array fallback,
  exactly as the seed did);
* per-point paired baseline training — before baseline memoization
  shared one exact run per (model, scale, training config, seed) group;
* per-channel-group engine calls — before `ReuseEngine.matmul_groups`
  batched them into one multi-group signature/group-by phase
  (`batch_channel_groups=False` replays the per-call loop);
* object-dtype Hitmap states — before the dense ``int8`` state codes,
  every classification materialised ``HitState`` enum arrays and every
  consumer scanned them with object compares (``seed_mode`` replays
  the materialisation and mask scans per classification);
* the per-group masked cache ride — before the fused
  gather->GEMM->scatter ``ReuseSession.ride_groups`` assembled every
  ``matmul_groups`` call in one pass (``MercuryConfig(fused_ride=
  False)`` keeps the per-call oracle; the ``cache_ride`` segment times
  the two assemblies head to head and asserts them bit-identical);
* cache-less serving — the serving segment replays one Zipfian trace
  without and with the cross-request exact cache;
* single-backend serving — the sharded segment replays one saturating
  Zipfian trace on one backend worker vs four consistent-hash shards,
  comparing the replay's simulated per-worker makespan (the scale-out
  win an in-process replay cannot show in wall clock);
* no-replacement serving — the tiered segment replays one *churning*
  Zipfian trace (the hot set rotates five times) against the
  same small cache without and with LRU replacement, comparing the
  simulated compute-bound makespan: replacement keeps the current hot
  set resident where the paper's no-replacement sets stay stuck;
* instrumented serving — the telemetry segment replays the churn trace
  bare vs with the event bus + metrics bundle attached; its floor is a
  *ceiling on overhead* (within ~5% of bare), not a speedup;
* GIL-bound serving — the parallel segment executes the same replay
  schedule in one process vs four real worker processes
  (:mod:`repro.serving.parallel`) and compares *measured* wall clock.
  Its floor only applies on hosts with >= 2 usable CPUs (recorded in
  the segment): one core cannot express process parallelism, so
  single-core machines record the measurement without gating on it.

The remaining rewrites (vectorised pooling, cached conv weight views,
the stateless ``simulate`` fast path, engine micro-optimisations) have
no kept seed twin, so they speed up *both* sides of the train-step and
sweep segments equally — the reported composite speedups understate
the full distance to the seed rather than overstate it.

Usage::

    PYTHONPATH=src python benchmarks/perf_suite.py                # full
    PYTHONPATH=src python benchmarks/perf_suite.py --quick        # CI
    PYTHONPATH=src python benchmarks/perf_suite.py --quick --check

``--check`` exits non-zero when the im2col or baseline-memoization
speedups fall below a conservative floor (1.5x by default) — the CI
perf-smoke gate.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from contextlib import contextmanager

import numpy as np

import repro.core.rpq as rpq_module
import repro.nn.layers.conv as conv_module
from repro.analysis.functional_sweep import (FunctionalPoint,
                                             baseline_key,
                                             build_functional_grid,
                                             evaluate_baseline_point,
                                             load_point_data,
                                             mercury_config_for,
                                             run_functional_sweep,
                                             training_config_for)
from repro.core.hitmap_sim import simulate_hitmap
from repro.core.reuse import ReuseEngine
from repro.core.rpq import RPQHasher, ints_to_words, pack_bits
from repro.data.loaders import BatchLoader
from repro.models.registry import build_model
from repro.nn.im2col import im2col, im2col_reference
from repro.training.trainer import Trainer

SCHEMA = "perf-suite"

# The reference functional-sweep benchmark config: one baseline group,
# four MercuryConfig variants spanning the int64 and multi-word
# signature paths (63 bits was reachable in the seed through adaptive
# growth, via its slow object-int fallback).
REFERENCE_SWEEP = dict(models=["squeezenet"], dataset_scales=("small",),
                       adaptations=("full", "off"),
                       signature_bits=(20, 63), epochs=1)
QUICK_SWEEP = dict(REFERENCE_SWEEP, dataset_scales=("tiny",))


# ----------------------------------------------------------------------
# Seed-behaviour replays
# ----------------------------------------------------------------------
def seed_pack_bits(bits: np.ndarray) -> np.ndarray:
    """The seed ``pack_bits``: object-dtype Python ints past 62 bits."""
    bits = np.asarray(bits)
    n_vectors, n_bits = bits.shape
    if n_bits <= 62:
        weights = (1 << np.arange(n_bits - 1, -1, -1, dtype=np.int64))
        return (bits.astype(np.int64) * weights).sum(axis=1)
    packed = np.empty(n_vectors, dtype=object)
    weights = [1 << (n_bits - 1 - i) for i in range(n_bits)]
    for row in range(n_vectors):
        value = 0
        row_bits = bits[row]
        for i in range(n_bits):
            if row_bits[i]:
                value |= weights[i]
        packed[row] = value
    return packed


def _seed_object_states(simulation):
    """Replay the seed's object-dtype Hitmap states on one simulation.

    The seed carried ``HitState`` enum objects end to end: every
    classification materialised an object array, and every consumer
    (the ride's HIT mask, the state counters) scanned it with
    object-equality compares.  This replays exactly those per-batch
    costs — one object materialisation plus the two mask scans — and
    hands the dense codes back so the rest of the pipeline still runs.
    """
    from repro.core.hitmap import (HIT_CODE, HitState, MAU_CODE, MNU_CODE,
                                   codes_to_states)
    objects = codes_to_states(simulation.states)
    hit_mask = objects == HitState.HIT
    mau_mask = objects == HitState.MAU
    codes = np.full(len(objects), MNU_CODE, dtype=np.int8)
    codes[hit_mask] = HIT_CODE
    codes[mau_mask] = MAU_CODE
    simulation.states = codes
    return simulation


@contextmanager
def seed_mode():
    """Swap in the seed implementations kept as oracles.

    Besides the loop-filled im2col and the object-int ``pack_bits``,
    this replays the behaviours later overhauls retired and keep
    in-tree as oracles: one engine call per channel group (the loop
    ``batch_channel_groups=False`` preserves, instead of the
    multi-group signature phase), object-dtype ``HitState`` arrays on
    every classification (``_seed_object_states``), and with them the
    per-group masked cache ride (``ReuseSession.ride`` per call — the
    oracle that ``MercuryConfig(fused_ride=False)`` keeps — instead of
    the fused gather->GEMM->scatter ``ride_groups``)."""
    from repro.core.session import ReuseSession

    original_im2col = conv_module.im2col
    original_pack_bits = rpq_module.pack_bits
    original_classify = ReuseSession.classify
    original_classify_groups = ReuseSession.classify_groups
    original_matmul_groups = ReuseEngine.matmul_groups

    def seed_classify(self, signatures):
        return _seed_object_states(original_classify(self, signatures))

    def seed_classify_groups(self, signature_groups, signature_bits):
        return [_seed_object_states(simulation) for simulation in
                original_classify_groups(self, signature_groups,
                                         signature_bits)]

    def seed_matmul_groups(self, vectors_groups, weights_groups, *,
                           layer, phase="forward"):
        return [self.matmul(vectors, weights, layer=layer, phase=phase)
                for vectors, weights
                in zip(vectors_groups, weights_groups)]

    conv_module.im2col = im2col_reference
    rpq_module.pack_bits = seed_pack_bits
    ReuseSession.classify = seed_classify
    ReuseSession.classify_groups = seed_classify_groups
    ReuseEngine.matmul_groups = seed_matmul_groups
    try:
        yield
    finally:
        conv_module.im2col = original_im2col
        rpq_module.pack_bits = original_pack_bits
        ReuseSession.classify = original_classify
        ReuseSession.classify_groups = original_classify_groups
        ReuseEngine.matmul_groups = original_matmul_groups


# ----------------------------------------------------------------------
# Timing helpers
# ----------------------------------------------------------------------
def best_of(fn, repeats: int) -> float:
    """Best wall-clock of ``repeats`` calls (first call warms caches)."""
    best = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _segment(before_s: float, after_s: float, **extra) -> dict:
    return {"before_s": before_s, "after_s": after_s,
            "speedup": before_s / after_s, **extra}


# ----------------------------------------------------------------------
# Segments
# ----------------------------------------------------------------------
def segment_im2col(quick: bool, repeats: int) -> dict:
    """Strided single-copy im2col vs the loop-filled seed extraction."""
    shape = (4, 16, 24, 24) if quick else (8, 32, 32, 32)
    x = np.random.default_rng(0).normal(size=shape)
    before = best_of(lambda: im2col_reference(x, 3, 3, 1, 1), repeats)
    after = best_of(lambda: im2col(x, 3, 3, 1, 1), repeats)
    return _segment(before, after, input_shape=list(shape), kernel=3,
                    stride=1, pad=1)


def segment_rpq_projection(quick: bool, repeats: int) -> dict:
    """Growing 16 -> 64 signature bits on one batch: full reprojection
    per step (seed) vs the incremental pipeline (new columns only)."""
    num_vectors = 2048 if quick else 8192
    # Vector length of a 3x3 conv patch over 32 channels.
    vectors = np.random.default_rng(1).normal(size=(num_vectors, 288))
    steps = list(range(16, 65, 8))

    def full_reprojection():
        hasher = RPQHasher(seed=9)
        for bits in steps:
            pack_bits((hasher.project(vectors, bits) >= 0.0).astype(np.uint8))

    def incremental_pipeline():
        pipeline = RPQHasher(seed=9).pipeline("bench")
        for bits in steps:
            pipeline.signatures(vectors, bits)

    before = best_of(full_reprojection, repeats)
    after = best_of(incremental_pipeline, repeats)
    return _segment(before, after, num_vectors=num_vectors,
                    growth_steps=steps)


def segment_hitmap_multiword(quick: bool, repeats: int) -> dict:
    """>62-bit Hitmap classification: the sequential object-int fallback
    the seed dropped to vs the lexicographic multi-word group-by."""
    num_probes = 5000 if quick else 20000
    rng = np.random.default_rng(2)
    pool = [(1 << 69) + int(v) for v in rng.integers(0, 400, size=400)]
    trace_ints = np.array([pool[i] for i in
                           rng.integers(0, len(pool), size=num_probes)],
                          dtype=object)
    trace_words = ints_to_words(trace_ints)
    before = best_of(lambda: simulate_hitmap(trace_ints, num_sets=64,
                                             ways=16), repeats)
    after = best_of(lambda: simulate_hitmap(trace_words, num_sets=64,
                                            ways=16), repeats)
    return _segment(before, after, num_probes=num_probes, signature_bits=70)


def _one_train_step(point: FunctionalPoint) -> float:
    """Build a fresh trainer for ``point``; time a single cold step.

    Setup (data synthesis, model/engine/trainer construction) happens
    outside the timed window — the segment measures the training step,
    not the harness around it — but every timed step starts from a
    fresh model and an empty MCACHE so repeats do identical work.
    """
    xtr, ytr, _, _, num_outputs = load_point_data(point)
    model = build_model(point.model, num_classes=num_outputs, seed=1)
    engine = ReuseEngine(mercury_config_for(point))
    trainer = Trainer(model, training_config_for(point), engine=engine)
    loader = BatchLoader(xtr, ytr, batch_size=point.batch_size,
                         shuffle=False, seed=0)
    inputs, targets = next(iter(loader))
    start = time.perf_counter()
    trainer.train_step(inputs, targets)
    return time.perf_counter() - start


def segment_train_step(quick: bool, repeats: int) -> dict:
    """One reuse-engine training step (forward + backward + update)."""
    point = FunctionalPoint(model="squeezenet",
                            dataset_scale="tiny" if quick else "small",
                            epochs=1, signature_bits=20)
    repeats = max(repeats, 1)
    with seed_mode():
        before = min(_one_train_step(point) for _ in range(repeats + 1))
    after = min(_one_train_step(point) for _ in range(repeats + 1))
    return _segment(before, after, model=point.model,
                    dataset_scale=point.dataset_scale,
                    signature_bits=point.signature_bits)


def segment_baseline_memoization(points) -> dict:
    """Wall-clock of the baseline-training phase of the reference sweep:
    one exact run per point (seed) vs one per baseline-key group."""
    groups: dict[tuple, FunctionalPoint] = {}
    for point in points:
        groups.setdefault(baseline_key(point), point)

    start = time.perf_counter()
    for point in points:
        evaluate_baseline_point(point)
    before = time.perf_counter() - start

    start = time.perf_counter()
    for point in groups.values():
        evaluate_baseline_point(point)
    after = time.perf_counter() - start
    return _segment(before, after, points=len(points), groups=len(groups))


def segment_conv_group_batching(quick: bool, repeats: int) -> dict:
    """Per-channel-group engine calls (`conv_channel_group=1`): one call
    per group (seed, `batch_channel_groups=False`) vs the multi-group
    signature/group-by phase (`ReuseEngine.matmul_groups`)."""
    from repro.core.config import MercuryConfig
    from repro.nn.layers.conv import Conv2D

    channels = 32 if quick else 64
    x = np.random.default_rng(3).normal(
        size=(8, channels, 8 if quick else 12, 8 if quick else 12))

    def run(batched: bool):
        engine = ReuseEngine(MercuryConfig(
            batch_channel_groups=batched, conv_channel_group=1,
            adaptive_signature_length=False, adaptive_stoppage=False))
        conv = Conv2D(channels, 16, 3, padding=1, seed=1)
        conv.engine = engine
        conv.forward(x)

    before = best_of(lambda: run(False), repeats)
    after = best_of(lambda: run(True), repeats)
    return _segment(before, after, channels=channels,
                    input_shape=list(x.shape))


def segment_cache_ride(quick: bool, repeats: int) -> dict:
    """Cache-ride assembly at conv-like group counts: per-group masked
    GEMMs (`ReuseSession.ride` once per group — the oracle that
    ``MercuryConfig(fused_ride=False)`` keeps) vs the fused
    gather->GEMM->scatter (`ReuseSession.ride_groups`: one miss gather,
    contiguous per-group GEMM slices, one scatter + HIT copy).  Both
    sides are asserted bit-identical before timing."""
    from repro.core.hitmap_sim import simulate_hitmap_grouped
    from repro.core.session import ReuseSession

    # The engine's per-channel-group shape: a 3x3 kernel over one
    # channel gives length-9 vectors, one group per input channel.
    num_groups = 32 if quick else 64
    rows = 256 if quick else 576
    length, num_filters = 9, 16
    rng = np.random.default_rng(4)
    groups = [rng.normal(size=(rows, length)) for _ in range(num_groups)]
    weights = [rng.normal(size=(length, num_filters))
               for _ in range(num_groups)]
    # A small signature pool per group reproduces the early-conv
    # similarity regime (paper Figure 1): most rows are HITs, so the
    # assembly overhead, not the GEMM, dominates the per-call loop.
    traces = [rng.choice(rng.integers(0, 1 << 16, size=rows // 4),
                         size=rows) for _ in range(num_groups)]
    simulations = simulate_hitmap_grouped(
        np.concatenate(traces), [rows] * num_groups,
        num_sets=256, ways=16)

    def masked_per_group():
        return [ReuseSession.ride(vectors, w, simulation)
                for vectors, w, simulation
                in zip(groups, weights, simulations)]

    def fused():
        return ReuseSession.ride_groups(groups, weights, simulations)

    for oracle, ride in zip(masked_per_group(), fused()):
        np.testing.assert_array_equal(oracle, ride)
    # Sub-millisecond assembly calls are allocator-noise sensitive;
    # extra best-of iterations are cheap and stabilise the ratio.
    repeats = max(repeats, 10)
    before = best_of(masked_per_group, repeats)
    after = best_of(fused, repeats)
    hit_rows = sum(simulation.hits for simulation in simulations)
    return _segment(before, after, groups=num_groups, rows_per_group=rows,
                    vector_length=length, num_filters=num_filters,
                    hit_fraction=hit_rows / (num_groups * rows))


def segment_serving_reuse(quick: bool, repeats: int) -> dict:
    """Zipfian serving trace: no cache (every request forwarded) vs the
    cross-request exact cache (hits copy cached outputs)."""
    from repro.models.registry import build_model
    from repro.serving import (BatcherConfig, InferenceServer,
                               ServingPolicy, TrafficConfig,
                               build_request_pool, generate_trace)

    num_requests = 120 if quick else 400
    pool = build_request_pool("squeezenet", pool_size=16, image_size=12,
                              seed=0)
    trace = generate_trace(TrafficConfig(pattern="zipfian",
                                         num_requests=num_requests, seed=1),
                           len(pool))

    def serve(cached: bool):
        model = build_model("squeezenet", num_classes=4, seed=3)
        policy = ServingPolicy(request_cache=cached, vector_cache=False,
                               exact_check=True, compute="batched")
        server = InferenceServer(model, policy,
                                 BatcherConfig(max_batch_size=8,
                                               max_wait_s=0.001))
        server.replay(trace, pool)

    before = best_of(lambda: serve(False), repeats)
    after = best_of(lambda: serve(True), repeats)
    return _segment(before, after, num_requests=num_requests,
                    pool_size=len(pool), traffic="zipfian")


def segment_serving_sharded(quick: bool, repeats: int) -> dict:
    """Sharded serving scale-out: the whole trace on one backend worker
    (the pre-shard facade) vs four signature-routed shards draining
    their queues in parallel on the replay's simulated clock."""
    from repro.models.registry import build_model
    from repro.serving import (BatcherConfig, InferenceServer,
                               ServingPolicy, TrafficConfig,
                               build_request_pool, generate_trace)

    num_requests = 160 if quick else 480
    shard_count = 4
    pool = build_request_pool("squeezenet", pool_size=48, image_size=12,
                              seed=0)
    # A saturating arrival rate keeps the makespan compute-bound, so
    # the comparison measures worker parallelism, not trace duration.
    trace = generate_trace(TrafficConfig(pattern="zipfian",
                                         num_requests=num_requests,
                                         rate_rps=200000.0, seed=1),
                           len(pool))

    def makespan(shards: int) -> float:
        model = build_model("squeezenet", num_classes=4, seed=3)
        policy = ServingPolicy(request_cache=True, vector_cache=False,
                               exact_check=True, compute="batched")
        server = InferenceServer(model, policy,
                                 BatcherConfig(max_batch_size=8,
                                               max_wait_s=0.001),
                                 shards=shards)
        _, report = server.replay(trace, pool)
        return report.simulated_makespan_s

    before = min(makespan(1) for _ in range(max(repeats, 1)))
    after = min(makespan(shard_count) for _ in range(max(repeats, 1)))
    return _segment(before, after, num_requests=num_requests,
                    pool_size=len(pool), shards=shard_count,
                    traffic="zipfian")


def segment_serving_tiered(quick: bool, repeats: int) -> dict:
    """Cache replacement on a churning Zipfian trace: the paper's
    no-replacement cache (stuck with whatever epoch filled each set
    first) vs LRU eviction at identical capacity.  The hot set rotates
    five times over the trace, so replacement keeps the current head
    resident and fewer requests forward through the model; per-request
    compute ties every saved hit to a full forward, and a saturating
    arrival rate keeps the makespan compute-bound at any trace length.
    Seeds are stream-derived exactly like the serving sweep so the
    trace matches the sweep's churn acceptance geometry."""
    from repro.analysis.functional_sweep import derive_seed
    from repro.analysis.serving_sweep import (MODEL_STREAM, POOL_STREAM,
                                              TRACE_STREAM)
    from repro.models.registry import build_model
    from repro.serving import (BatcherConfig, InferenceServer,
                               ServingPolicy, TrafficConfig,
                               build_request_pool, generate_trace)

    num_requests = 160 if quick else 480
    rotate_every = num_requests // 5
    pool = build_request_pool("squeezenet", pool_size=48, image_size=24,
                              seed=derive_seed(0, POOL_STREAM))
    trace = generate_trace(TrafficConfig(pattern="zipfian",
                                         num_requests=num_requests,
                                         zipf_rotate_every=rotate_every,
                                         rate_rps=200000.0,
                                         seed=derive_seed(0, TRACE_STREAM)),
                           len(pool))

    def makespan(eviction: str) -> float:
        model = build_model("squeezenet", num_classes=4,
                            seed=derive_seed(0, MODEL_STREAM))
        policy = ServingPolicy(request_cache=True, vector_cache=False,
                               exact_check=True, compute="per_request",
                               entries=8, ways=8, eviction=eviction)
        server = InferenceServer(model, policy,
                                 BatcherConfig(max_batch_size=8,
                                               max_wait_s=0.001))
        _, report = server.replay(trace, pool)
        return report.simulated_makespan_s

    before = min(makespan("none") for _ in range(max(repeats, 1)))
    after = min(makespan("lru") for _ in range(max(repeats, 1)))
    return _segment(before, after, num_requests=num_requests,
                    pool_size=len(pool), entries=8, ways=8,
                    eviction="lru", traffic="zipfian",
                    zipf_rotate_every=rotate_every)


def segment_serving_telemetry(quick: bool, repeats: int) -> dict:
    """Telemetry-bus overhead on the serving hot path: the tiered
    churn replay bare vs with a full :class:`~repro.obs.Telemetry`
    bundle attached (bus + metrics subscription + window accounting).
    Emission is a bounded-queue append off the decision path, so the
    'speedup' here is expected to sit at ~1.0x; its floor gates the
    instrumented run to within ~5% of the bare one rather than
    asserting a win."""
    from repro.analysis.functional_sweep import derive_seed
    from repro.analysis.serving_sweep import (MODEL_STREAM, POOL_STREAM,
                                              TRACE_STREAM)
    from repro.models.registry import build_model
    from repro.obs import Telemetry
    from repro.serving import (BatcherConfig, InferenceServer,
                               ServingPolicy, TrafficConfig,
                               build_request_pool, generate_trace)

    num_requests = 160 if quick else 480
    rotate_every = num_requests // 5
    pool = build_request_pool("squeezenet", pool_size=48, image_size=24,
                              seed=derive_seed(0, POOL_STREAM))
    trace = generate_trace(TrafficConfig(pattern="zipfian",
                                         num_requests=num_requests,
                                         zipf_rotate_every=rotate_every,
                                         rate_rps=200000.0,
                                         seed=derive_seed(0, TRACE_STREAM)),
                           len(pool))

    def replay_time(observed: bool) -> float:
        model = build_model("squeezenet", num_classes=4,
                            seed=derive_seed(0, MODEL_STREAM))
        policy = ServingPolicy(request_cache=True, vector_cache=False,
                               exact_check=True, compute="per_request",
                               entries=8, ways=8)
        server = InferenceServer(model, policy,
                                 BatcherConfig(max_batch_size=8,
                                               max_wait_s=0.001),
                                 telemetry=Telemetry(window_batches=4)
                                 if observed else None)
        start = time.perf_counter()
        server.replay(trace, pool)
        return time.perf_counter() - start

    before = min(replay_time(False) for _ in range(max(repeats, 1)))
    after = min(replay_time(True) for _ in range(max(repeats, 1)))
    return _segment(before, after, num_requests=num_requests,
                    pool_size=len(pool), entries=8, ways=8,
                    traffic="zipfian", zipf_rotate_every=rotate_every)


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux
        return os.cpu_count() or 1


def segment_serving_parallel(quick: bool, repeats: int) -> dict:
    """Measured process-parallel scale-out: the same replay schedule in
    one process vs four real worker processes (warm, long-lived), both
    on the wall clock.  Cache-less per-request compute keeps the work
    stateless across repeats and heavy enough per batch that model
    time, not queue IPC, dominates.  ``usable_cpus`` is recorded so the
    CI floor can skip hosts that cannot physically show parallelism."""
    from repro.models.registry import build_model
    from repro.serving import (BatcherConfig, InferenceServer,
                               ParallelInferenceServer, ServingPolicy,
                               TrafficConfig, build_request_pool,
                               generate_trace)

    workers = 4
    num_requests = 96 if quick else 192
    image_size = 32 if quick else 48
    pool = build_request_pool("squeezenet", pool_size=num_requests,
                              image_size=image_size, seed=0)
    # A saturating arrival rate fills every micro-batch, minimising the
    # per-batch dispatch overhead on both sides of the comparison.
    trace = generate_trace(TrafficConfig(pattern="uniform",
                                         num_requests=num_requests,
                                         rate_rps=200000.0, seed=1),
                           len(pool))
    model = build_model("squeezenet", num_classes=4, seed=3)
    policy = ServingPolicy(request_cache=False, vector_cache=False,
                           compute="per_request")
    config = BatcherConfig(max_batch_size=8, max_wait_s=0.001)

    single = InferenceServer(model, policy, config, shards=workers)
    single.replay(trace, pool)  # warm numpy/model paths
    before = min(single.replay(trace, pool)[1].duration_s
                 for _ in range(max(repeats, 1)))

    with ParallelInferenceServer(model, policy, config, workers=workers,
                                 snapshot_every_batches=0) as parallel:
        parallel.replay(trace, pool)  # warm workers (spawn excluded)
        after = min(parallel.replay(trace, pool)[1].measured_makespan_s
                    for _ in range(max(repeats, 1)))
    return _segment(before, after, num_requests=num_requests,
                    image_size=image_size, workers=workers,
                    traffic="uniform", usable_cpus=usable_cpus())


def segment_functional_sweep(points) -> dict:
    """The reference sweep end to end: seed implementations and paired
    baselines vs the current hot path with shared baselines."""
    start = time.perf_counter()
    with seed_mode():
        run_functional_sweep(points, processes=0, share_baselines=False)
    before = time.perf_counter() - start

    start = time.perf_counter()
    run_functional_sweep(points, processes=0)
    after = time.perf_counter() - start
    return _segment(before, after, points=len(points))


# ----------------------------------------------------------------------
# Suite
# ----------------------------------------------------------------------
def run_suite(quick: bool = False, repeats: int | None = None) -> dict:
    """Run every segment; returns the JSON-safe artifact payload."""
    repeats = repeats or (2 if quick else 3)
    sweep_config = QUICK_SWEEP if quick else REFERENCE_SWEEP
    points = build_functional_grid(**sweep_config)

    segments = {
        "im2col": segment_im2col(quick, repeats),
        "rpq_projection_growth": segment_rpq_projection(quick, repeats),
        "hitmap_multiword": segment_hitmap_multiword(quick, repeats),
        "train_step": segment_train_step(quick, repeats),
        "conv_group_batching": segment_conv_group_batching(quick, repeats),
        "cache_ride": segment_cache_ride(quick, repeats),
        "serving_reuse": segment_serving_reuse(quick, repeats),
        "serving_sharded": segment_serving_sharded(quick, repeats),
        "serving_tiered": segment_serving_tiered(quick, repeats),
        "serving_telemetry": segment_serving_telemetry(quick, repeats),
        "serving_parallel": segment_serving_parallel(quick, repeats),
        "baseline_memoization": segment_baseline_memoization(points),
        "functional_sweep": segment_functional_sweep(points),
    }
    return {
        "schema": SCHEMA,
        "quick": quick,
        "repeats": repeats,
        "reference_sweep": {key: list(value) if isinstance(value, (tuple, list))
                            else value for key, value in sweep_config.items()},
        "segments": segments,
        "speedups": {name: segment["speedup"]
                     for name, segment in segments.items()},
    }


def check_floors(payload: dict, floor: float,
                 sharded_floor: float = 1.2,
                 tiered_floor: float = 1.05,
                 parallel_floor: float = 1.5,
                 telemetry_floor: float = 0.95,
                 train_step_floor: float = 1.25,
                 cache_ride_floor: float = 1.1) -> list[str]:
    """The CI gate: im2col and baseline memoization must hold ``floor``;
    the training step must beat the seed replay (loop im2col, per-group
    engine calls, object-dtype states, masked per-call ride) by
    ``train_step_floor``, and the fused gather->GEMM->scatter ride must
    beat the per-group masked assembly by ``cache_ride_floor`` — both
    conservative against single-core timer noise (the committed
    full-mode baselines sit well above them);
    the 4-shard serving makespan must beat the single worker by
    ``sharded_floor`` (consistent-hash balance caps it below the ideal
    4x, so its floor is separate and conservative); LRU replacement on
    the churning trace must beat the no-replacement cache by
    ``tiered_floor`` (the win is a hit-rate delta, typically ~1.1x, so
    its floor only asserts the direction with margin for timer noise);
    the telemetry-instrumented replay must stay within ~5% of the bare
    one (``telemetry_floor`` < 1.0 — observability is gated on *not
    slowing the hot path*, not on winning);
    the measured process-parallel makespan must beat the single process
    by ``parallel_floor`` — scaled down to ``0.6 x usable cores`` on
    hosts with fewer cores than workers, and not gated at all on
    single-core hosts (one core cannot express process parallelism; the
    segment still records the measurement)."""
    failures = []
    floors = {"im2col": floor, "baseline_memoization": floor,
              "train_step": train_step_floor,
              "cache_ride": cache_ride_floor,
              "serving_sharded": sharded_floor,
              "serving_tiered": tiered_floor,
              "serving_telemetry": telemetry_floor}
    for name, required in floors.items():
        speedup = payload["speedups"].get(name)
        if speedup is None:
            # A gated segment that vanished (renamed, or its runner
            # dropped it) must fail loudly, not pass vacuously.
            failures.append(f"{name}: segment missing from the payload")
        elif speedup < required:
            failures.append(
                f"{name}: {speedup:.2f}x < required {required:.2f}x")
    parallel = payload["segments"].get("serving_parallel") \
        if "segments" in payload else None
    if parallel is None:
        failures.append(
            "serving_parallel: segment missing from the payload")
    else:
        cpus = int(parallel.get("usable_cpus", 1))
        workers = int(parallel.get("workers", 4))
        if cpus >= 2:
            required = min(parallel_floor, 0.6 * min(cpus, workers))
            if parallel["speedup"] < required:
                failures.append(
                    f"serving_parallel: {parallel['speedup']:.2f}x < "
                    f"required {required:.2f}x ({cpus} usable cpus)")
    return failures


def print_report(payload: dict) -> None:
    print(f"perf suite ({'quick' if payload['quick'] else 'full'} mode, "
          f"best of {payload['repeats']})")
    print(f"{'segment':<24} {'before':>10} {'after':>10} {'speedup':>9}")
    for name, segment in payload["segments"].items():
        print(f"{name:<24} {segment['before_s'] * 1e3:>8.2f}ms "
              f"{segment['after_s'] * 1e3:>8.2f}ms "
              f"{segment['speedup']:>8.2f}x")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller inputs / fewer repeats (CI smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per segment (best-of)")
    parser.add_argument("--output", default=None,
                        help="write the artifact JSON to this path")
    parser.add_argument("--check", action="store_true",
                        help="fail when key speedups drop below --floor")
    parser.add_argument("--floor", type=float, default=1.5,
                        help="minimum im2col / baseline-memoization "
                             "speedup for --check (default 1.5)")
    parser.add_argument("--sharded-floor", type=float, default=1.2,
                        help="minimum 4-shard serving makespan speedup "
                             "for --check (default 1.2)")
    parser.add_argument("--tiered-floor", type=float, default=1.05,
                        help="minimum LRU-vs-no-replacement makespan "
                             "speedup on the churning trace for "
                             "--check (default 1.05)")
    parser.add_argument("--telemetry-floor", type=float, default=0.95,
                        help="minimum telemetry-on/off replay ratio for "
                             "--check — gates bus overhead at ~5% "
                             "(default 0.95)")
    parser.add_argument("--parallel-floor", type=float, default=1.5,
                        help="minimum process-parallel serving speedup "
                             "for --check on hosts with >= 2 usable "
                             "cores (default 1.5)")
    parser.add_argument("--train-step-floor", type=float, default=1.25,
                        help="minimum train-step speedup over the full "
                             "seed replay for --check (default 1.25)")
    parser.add_argument("--cache-ride-floor", type=float, default=1.1,
                        help="minimum fused-vs-masked cache-ride "
                             "assembly speedup for --check "
                             "(default 1.1)")
    args = parser.parse_args(argv)

    payload = run_suite(quick=args.quick, repeats=args.repeats)
    print_report(payload)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")

    if args.check:
        failures = check_floors(payload, args.floor,
                                sharded_floor=args.sharded_floor,
                                tiered_floor=args.tiered_floor,
                                parallel_floor=args.parallel_floor,
                                telemetry_floor=args.telemetry_floor,
                                train_step_floor=args.train_step_floor,
                                cache_ride_floor=args.cache_ride_floor)
        if failures:
            for failure in failures:
                print(f"FAIL {failure}")
            return 1
        print(f"floors held (>= {args.floor:.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
