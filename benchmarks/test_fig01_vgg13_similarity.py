"""Figure 1: input and gradient vector similarity per VGG-13 conv layer.

Paper: up to 75% input similarity and up to 67% gradient similarity,
highest in the early layers.
"""

from benchmarks.harness import IMAGE_CONFIG, print_header
from repro.analysis import format_table, measure_layer_similarity
from repro.data import ClusteredImageDataset
from repro.models import build_model


def run_experiment():
    dataset = ClusteredImageDataset(IMAGE_CONFIG)
    model = build_model("vgg13", num_classes=IMAGE_CONFIG.num_classes, seed=1)
    results = measure_layer_similarity(model, dataset.images[:8],
                                       dataset.labels[:8], signature_bits=20)
    return results


def test_fig01_vgg13_similarity(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print_header("Figure 1 — VGG-13 per-layer similarity "
                 "(paper: inputs up to 75%, gradients up to 67%)")
    rows = [[f"layer-{i + 1}", item.input_similarity * 100,
             item.gradient_similarity * 100]
            for i, item in enumerate(results)]
    print(format_table(["layer", "input similarity (%)",
                        "gradient similarity (%)"], rows, "{:.1f}"))

    assert len(results) == 10          # VGG-13 has ten conv layers
    peak_input = max(item.input_similarity for item in results)
    assert 0.4 <= peak_input <= 1.0    # the paper's "up to 75%" band
    # Early layers see more input similarity than the deepest ones.
    assert results[0].input_similarity > results[-2].input_similarity * 0.5
