"""Weight initialisation helpers."""

from __future__ import annotations

import numpy as np


def he_normal(shape: tuple, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) normal initialisation, appropriate for ReLU networks."""
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: tuple, fan_in: int, fan_out: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape)


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Return a numpy Generator; a fixed default keeps runs repeatable."""
    return np.random.default_rng(0 if seed is None else seed)
