"""Timing of signature calculation (§III-B2, Figure 8).

For ``x`` by ``x`` input vectors processed by a PE set of ``x`` PEs:

* **Without pipelining** every bit of every signature takes ``2x``
  cycles (x multiply/accumulate cycles per row plus the vertical
  accumulation), and bits do not overlap.
* **With pipelining** (the ORg register plus staggered PE start times)
  the first bit of the first signature takes ``2x + 1`` cycles and every
  subsequent bit — of any signature produced by the same PE set — takes
  only ``x`` cycles.

Figure 8(c) is the ratio of the two.
"""

from __future__ import annotations

from dataclasses import dataclass


def unpipelined_signature_cycles(num_signatures: int, bits_per_signature: int,
                                 vector_rows: int) -> int:
    """Cycles for one PE set to produce signatures without pipelining."""
    _validate(num_signatures, bits_per_signature, vector_rows)
    if num_signatures == 0 or bits_per_signature == 0:
        return 0
    return num_signatures * bits_per_signature * 2 * vector_rows


def pipelined_signature_cycles(num_signatures: int, bits_per_signature: int,
                               vector_rows: int) -> int:
    """Cycles for one PE set to produce signatures with ORg pipelining."""
    _validate(num_signatures, bits_per_signature, vector_rows)
    if num_signatures == 0 or bits_per_signature == 0:
        return 0
    total_bits = num_signatures * bits_per_signature
    return (2 * vector_rows + 1) + (total_bits - 1) * vector_rows


def _validate(num_signatures: int, bits_per_signature: int,
              vector_rows: int) -> None:
    if num_signatures < 0 or bits_per_signature < 0:
        raise ValueError("counts must be non-negative")
    if vector_rows <= 0:
        raise ValueError("vector_rows must be positive")


@dataclass
class SignaturePipelineModel:
    """Convenience wrapper evaluating both schedules and their speedup."""

    vector_rows: int = 3
    pipelined: bool = True

    def cycles(self, num_signatures: int, bits_per_signature: int) -> int:
        if self.pipelined:
            return pipelined_signature_cycles(num_signatures,
                                              bits_per_signature,
                                              self.vector_rows)
        return unpipelined_signature_cycles(num_signatures,
                                            bits_per_signature,
                                            self.vector_rows)

    def speedup_from_pipelining(self, num_signatures: int,
                                bits_per_signature: int) -> float:
        """Figure 8(c): unpipelined cycles / pipelined cycles."""
        base = unpipelined_signature_cycles(num_signatures, bits_per_signature,
                                            self.vector_rows)
        fast = pipelined_signature_cycles(num_signatures, bits_per_signature,
                                          self.vector_rows)
        if fast == 0:
            return 1.0
        return base / fast

    def steady_state_cycles_per_bit(self) -> tuple[int, int]:
        """(unpipelined, pipelined) asymptotic cycles per signature bit."""
        return 2 * self.vector_rows, self.vector_rows
