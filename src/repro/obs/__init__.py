"""Observability for the reuse stack: bus, metrics, audit, control.

A dependency-free telemetry layer threaded through serving *and*
training:

* :class:`~repro.obs.bus.EventBus` — typed events, bounded
  drop-counting subscriber queues; emission never blocks the hot path;
* :class:`~repro.obs.metrics.LogHistogram` /
  :class:`~repro.obs.metrics.MetricsRegistry` — mergeable log-bucketed
  percentile summaries, counters and gauges, rendered in the
  Prometheus text format on the HTTP ``/metrics`` endpoint;
* :class:`~repro.obs.recorder.AuditRecorder` — a versioned per-run
  manifest (config fingerprint, seed streams, per-window snapshots,
  controller decisions) persisted next to the cache snapshots;
* :class:`~repro.obs.controller.AdaptivePolicyController` — online
  TTL/admission/eviction (and optional signature-length) retuning
  from bus windows, with every decision audit-logged and reproducible
  via :func:`~repro.obs.controller.replay_decisions`.

The whole layer is opt-in and provably inert when off: a server built
without a :class:`Telemetry` handle takes the exact code paths it took
before this package existed, and golden replays stay byte-identical
with it on (events are emitted strictly off the decision path).
"""

from repro.obs.bus import DEFAULT_CAPACITY, Event, EventBus, Subscription
from repro.obs.controller import (AdaptivePolicyController,
                                  ControllerConfig, replay_decisions)
from repro.obs.metrics import (DEFAULT_GROWTH, METRIC_NAMES, LogHistogram,
                               MetricsCollector, MetricsRegistry)
from repro.obs.recorder import (AUDIT_FORMAT, AUDIT_MANIFEST,
                                AUDIT_VERSION, AuditRecorder,
                                read_manifest, render_manifest)


class Telemetry:
    """One run's observability bundle: bus + registry (+ audit/control).

    Hand an instance to :class:`~repro.serving.server.InferenceServer`
    (or the parallel server, or the trainer) to switch telemetry on.
    The bundle wires a metrics subscription onto its own bus and folds
    events into the registry whenever :meth:`pump` runs — at window
    boundaries, report time and every ``/metrics`` scrape — so the hot
    path only ever pays the bounded-queue append.
    """

    def __init__(self, *, audit_dir=None, controller=None,
                 window_batches: int = 4,
                 capacity: int = DEFAULT_CAPACITY, seeds=None):
        if window_batches <= 0:
            raise ValueError("window_batches must be positive")
        self.bus = EventBus()
        self.registry = MetricsRegistry()
        self.collector = MetricsCollector(self.registry)
        self._metrics_sub = self.bus.subscribe(capacity=capacity,
                                               name="metrics")
        self.recorder = AuditRecorder(audit_dir) \
            if audit_dir is not None else None
        self.controller = controller
        self.window_batches = window_batches
        # Seed streams recorded into every audit manifest (e.g.
        # {"trace": 1, "pool": 0, "rpq": 1234}); purely declarative.
        self.seeds = dict(seeds) if seeds else {}

    def pump(self) -> int:
        """Fold every queued event into the registry; returns how many."""
        return self.collector.drain(self._metrics_sub)

    def render_prometheus(self) -> str:
        """Pump, refresh the bus self-metrics, render ``/metrics``."""
        self.pump()
        stats = self.bus.stats()
        self.registry.set_gauge("repro_bus_events_total",
                                stats["emitted"])
        self.registry.set_gauge("repro_bus_dropped_total",
                                stats["dropped"])
        return self.registry.render_prometheus()

    def summary(self) -> dict:
        """Report-grade digest (rides on ``ServingReport.telemetry``)."""
        self.pump()
        return {
            "events": self.bus.emitted,
            "dropped": self.bus.dropped,
            "handled": self.collector.handled,
            "decisions": len(self.controller.decisions)
            if self.controller is not None else 0,
        }


__all__ = [
    "AUDIT_FORMAT",
    "AUDIT_MANIFEST",
    "AUDIT_VERSION",
    "AdaptivePolicyController",
    "AuditRecorder",
    "ControllerConfig",
    "DEFAULT_CAPACITY",
    "DEFAULT_GROWTH",
    "Event",
    "EventBus",
    "LogHistogram",
    "METRIC_NAMES",
    "MetricsCollector",
    "MetricsRegistry",
    "Subscription",
    "Telemetry",
    "read_manifest",
    "render_manifest",
    "replay_decisions",
]
