"""The Hitmap: per-input-vector HIT / MAU / MNU marks.

The Hitmap is what keeps the accelerator dataflow regular in spite of
skipped computations (§III-B3): before a PE set starts the dot products
for an input vector it consults the Hitmap entry —

* ``HIT``  — an earlier vector produced the same signature and its
  results live in MCACHE; the dot product is skipped.
* ``MAU``  — *miss and update*: the signature was inserted into MCACHE,
  so the PE set must compute and store its result.
* ``MNU``  — *miss no update*: the MCACHE set was full, the signature
  was not inserted; compute but do not store.
"""

from __future__ import annotations

from enum import Enum

import numpy as np


class HitState(Enum):
    """State of one Hitmap entry."""

    HIT = "HIT"
    MAU = "MAU"
    MNU = "MNU"


class Hitmap:
    """A per-vector array of :class:`HitState` values with counters."""

    def __init__(self, num_vectors: int):
        if num_vectors < 0:
            raise ValueError("num_vectors must be non-negative")
        self.num_vectors = num_vectors
        self._states: list[HitState | None] = [None] * num_vectors
        # For HIT entries, index of the earlier vector whose results are
        # reused (the MAU vector holding the matching signature).
        self._source: list[int | None] = [None] * num_vectors

    def set(self, index: int, state: HitState, source: int | None = None) -> None:
        """Record the state of vector ``index``.

        ``source`` is required for HIT entries and must point at an
        earlier vector.
        """
        if not 0 <= index < self.num_vectors:
            raise IndexError(f"vector index {index} out of range")
        if state is HitState.HIT:
            if source is None:
                raise ValueError("HIT entries need the source vector index")
            if not 0 <= source < index:
                raise ValueError("HIT source must be an earlier vector")
        self._states[index] = state
        self._source[index] = source

    def get(self, index: int) -> HitState:
        state = self._states[index]
        if state is None:
            raise KeyError(f"vector {index} has no Hitmap entry yet")
        return state

    def source(self, index: int) -> int | None:
        """For a HIT entry, the earlier vector whose result is reused."""
        return self._source[index]

    def is_complete(self) -> bool:
        """True when every vector has been marked."""
        return all(state is not None for state in self._states)

    # ------------------------------------------------------------------
    def counts(self) -> dict:
        """Counts of each state (and of unmarked entries)."""
        result = {HitState.HIT: 0, HitState.MAU: 0, HitState.MNU: 0, None: 0}
        for state in self._states:
            result[state] += 1
        return result

    def hit_fraction(self) -> float:
        """Fraction of vectors marked HIT (reused computations)."""
        if self.num_vectors == 0:
            return 0.0
        return self.counts()[HitState.HIT] / self.num_vectors

    def states_array(self) -> np.ndarray:
        """States as an object array (for vectorised consumers)."""
        return np.array(self._states, dtype=object)

    def sources_array(self) -> np.ndarray:
        """Reuse sources as an int array; -1 where not a HIT."""
        return np.array([-1 if s is None else s for s in self._source],
                        dtype=np.int64)

    def __len__(self) -> int:
        return self.num_vectors
