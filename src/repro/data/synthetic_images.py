"""Clustered synthetic image dataset (ImageNet-80 surrogate).

Each class has a smooth prototype image composed of a few random 2D
cosine waves; samples are the prototype plus a small random shift,
per-sample brightness jitter and pixel noise.  Two properties matter for
this reproduction:

* samples are **classifiable** — prototypes are well separated, so a
  small CNN can reach high accuracy within a few epochs, which is what
  the Figure 13 comparison needs;
* images are **spatially smooth** — extracted convolution patches
  repeat within and across images, producing the input-vector
  similarity MERCURY exploits (Figure 1 band of 40-75%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ImageDatasetConfig:
    """Parameters of the synthetic image generator."""

    num_classes: int = 8
    samples_per_class: int = 24
    image_size: int = 24
    channels: int = 3
    # Number of cosine components per class prototype; fewer components
    # mean smoother images and more patch similarity.
    prototype_components: int = 3
    noise_std: float = 0.05
    max_shift: int = 2
    brightness_jitter: float = 0.1
    # Quantisation levels applied to the final image; coarser levels
    # increase exact patch repetition (set to 0 to disable).
    quantization_levels: int = 32
    seed: int = 7

    def __post_init__(self):
        if self.num_classes <= 1:
            raise ValueError("need at least two classes")
        if self.samples_per_class <= 0:
            raise ValueError("samples_per_class must be positive")
        if self.image_size < 8:
            raise ValueError("image_size must be at least 8")
        if self.channels <= 0:
            raise ValueError("channels must be positive")


class ClusteredImageDataset:
    """Generates and holds the synthetic labelled images."""

    def __init__(self, config: ImageDatasetConfig | None = None):
        self.config = config or ImageDatasetConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self.prototypes = self._build_prototypes()
        self.images, self.labels = self._build_samples()

    # ------------------------------------------------------------------
    def _build_prototypes(self) -> np.ndarray:
        cfg = self.config
        size = cfg.image_size + 2 * cfg.max_shift
        grid_y, grid_x = np.meshgrid(np.linspace(0, 1, size),
                                     np.linspace(0, 1, size), indexing="ij")
        prototypes = np.zeros((cfg.num_classes, cfg.channels, size, size))
        for cls in range(cfg.num_classes):
            for channel in range(cfg.channels):
                image = np.zeros((size, size))
                for _ in range(cfg.prototype_components):
                    freq_y = self._rng.uniform(0.5, 3.0)
                    freq_x = self._rng.uniform(0.5, 3.0)
                    phase = self._rng.uniform(0, 2 * np.pi)
                    amplitude = self._rng.uniform(0.4, 1.0)
                    image += amplitude * np.cos(
                        2 * np.pi * (freq_y * grid_y + freq_x * grid_x) + phase)
                prototypes[cls, channel] = image
        # Normalise prototypes to roughly unit scale.
        prototypes /= max(cfg.prototype_components, 1)
        return prototypes

    def _build_samples(self) -> tuple[np.ndarray, np.ndarray]:
        cfg = self.config
        total = cfg.num_classes * cfg.samples_per_class
        images = np.zeros((total, cfg.channels, cfg.image_size, cfg.image_size))
        labels = np.zeros(total, dtype=np.int64)

        index = 0
        for cls in range(cfg.num_classes):
            for _ in range(cfg.samples_per_class):
                shift_y = self._rng.integers(0, 2 * cfg.max_shift + 1)
                shift_x = self._rng.integers(0, 2 * cfg.max_shift + 1)
                crop = self.prototypes[
                    cls, :,
                    shift_y:shift_y + cfg.image_size,
                    shift_x:shift_x + cfg.image_size].copy()
                crop *= 1.0 + self._rng.uniform(-cfg.brightness_jitter,
                                                cfg.brightness_jitter)
                crop += self._rng.normal(0.0, cfg.noise_std, size=crop.shape)
                if cfg.quantization_levels:
                    crop = np.round(crop * cfg.quantization_levels) / cfg.quantization_levels
                images[index] = crop
                labels[index] = cls
                index += 1

        # Shuffle samples so minibatches mix classes.
        order = self._rng.permutation(total)
        return images[order], labels[order]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.labels)

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])

    @property
    def num_classes(self) -> int:
        return self.config.num_classes

    @property
    def input_shape(self) -> tuple:
        return (self.config.channels, self.config.image_size,
                self.config.image_size)
