"""Tests for the adaptation policies, signature table and statistics."""

import numpy as np
import pytest

from repro.core.adaptation import SignatureLengthScheduler, SimilarityStoppage
from repro.core.signature import SignatureTable
from repro.core.stats import LayerReuseStats, ReuseStats


# ----------------------------------------------------------------------
# Signature length scheduler
# ----------------------------------------------------------------------
def test_scheduler_grows_after_plateau():
    scheduler = SignatureLengthScheduler(initial_bits=20, plateau_iterations=3,
                                         tolerance=1e-3)
    for _ in range(4):
        bits = scheduler.observe_loss(1.0)
    assert bits == 21
    assert scheduler.growth_events


def test_scheduler_resets_on_improvement():
    scheduler = SignatureLengthScheduler(initial_bits=20, plateau_iterations=3,
                                         tolerance=1e-3)
    losses = [1.0, 1.0, 0.8, 0.8, 0.6, 0.6]
    for loss in losses:
        bits = scheduler.observe_loss(loss)
    assert bits == 20


def test_scheduler_respects_max_bits():
    scheduler = SignatureLengthScheduler(initial_bits=20, max_bits=21,
                                         plateau_iterations=1, tolerance=1.0)
    for _ in range(10):
        bits = scheduler.observe_loss(1.0)
    assert bits == 21


def test_scheduler_validation():
    with pytest.raises(ValueError):
        SignatureLengthScheduler(initial_bits=0)
    with pytest.raises(ValueError):
        SignatureLengthScheduler(initial_bits=20, max_bits=10)


# ----------------------------------------------------------------------
# Stoppage
# ----------------------------------------------------------------------
def _record(hits, vectors=100, vector_length=9, filters=64, bits=20):
    record = LayerReuseStats(layer="conv", phase="forward")
    record.merge_call(vectors=vectors, hits=hits, mau=vectors - hits, mnu=0,
                      vector_length=vector_length, num_filters=filters,
                      signature_bits=bits, unique_signatures=vectors - hits,
                      detection_on=True)
    return record


def test_stoppage_disables_after_consecutive_costly_batches():
    stoppage = SimilarityStoppage(stoppage_batches=2)
    costly = _record(hits=1, filters=2)   # almost nothing saved
    assert stoppage.observe_batch(costly)
    assert not stoppage.observe_batch(costly)
    assert not stoppage.is_enabled_for("conv", "forward")
    assert "conv::forward" in stoppage.disabled_layers()


def test_stoppage_keeps_profitable_layer_enabled():
    stoppage = SimilarityStoppage(stoppage_batches=2)
    profitable = _record(hits=60, filters=256)
    for _ in range(10):
        assert stoppage.observe_batch(profitable)
    assert stoppage.is_enabled_for("conv", "forward")


def test_stoppage_consecutive_counter_resets():
    stoppage = SimilarityStoppage(stoppage_batches=2)
    costly = _record(hits=1, filters=2)
    profitable = _record(hits=60, filters=256)
    stoppage.observe_batch(costly)
    stoppage.observe_batch(profitable)   # breaks the streak
    stoppage.observe_batch(costly)
    assert stoppage.is_enabled_for("conv", "forward")


def test_stoppage_cost_model_pipelining_halves_cost():
    pipelined = SimilarityStoppage(pipelined_signatures=True)
    plain = SimilarityStoppage(pipelined_signatures=False)
    kwargs = dict(num_vectors=100, vector_length=9, signature_bits=20)
    assert plain.signature_cost_cycles(**kwargs) == \
        2 * pipelined.signature_cost_cycles(**kwargs)


def test_force_disable_and_reset():
    stoppage = SimilarityStoppage()
    stoppage.force_disable("conv", "forward")
    assert not stoppage.is_enabled_for("conv", "forward")
    stoppage.reset()
    assert stoppage.is_enabled_for("conv", "forward")


# ----------------------------------------------------------------------
# Signature table
# ----------------------------------------------------------------------
def test_signature_table_store_and_lookup():
    table = SignatureTable()
    sigs = np.array([1, 2, 3])
    table.store("conv", vector_length=9, signature_bits=20, signatures=sigs)
    record = table.lookup("conv", vector_length=9, num_vectors=3)
    assert record is not None
    assert list(record.signatures) == [1, 2, 3]


def test_signature_table_lookup_rejects_mismatched_shapes():
    table = SignatureTable()
    table.store("conv", 9, 20, np.array([1, 2, 3]))
    assert table.lookup("conv", vector_length=4, num_vectors=3) is None
    assert table.lookup("conv", vector_length=9, num_vectors=5) is None
    assert table.lookup("other", vector_length=9, num_vectors=3) is None


def test_signature_table_discard_and_clear():
    table = SignatureTable()
    table.store("a", 9, 20, np.array([1]))
    table.store("b", 9, 20, np.array([2]))
    table.discard("a")
    assert "a" not in table and "b" in table
    table.clear()
    assert len(table) == 0


# ----------------------------------------------------------------------
# ReuseStats
# ----------------------------------------------------------------------
def test_layer_stats_derived_quantities():
    record = _record(hits=30, vectors=100, vector_length=9, filters=10)
    assert record.hit_fraction == 0.3
    assert record.computed_vectors == 70
    assert record.skipped_macs == 30 * 9 * 10
    assert record.baseline_macs == 100 * 9 * 10
    assert record.executed_macs + record.skipped_macs == record.baseline_macs


def test_reuse_stats_aggregation():
    stats = ReuseStats()
    for layer, hits in (("a", 10), ("b", 20)):
        record = stats.record_for(layer, "forward")
        record.merge_call(vectors=50, hits=hits, mau=50 - hits, mnu=0,
                          vector_length=9, num_filters=4, signature_bits=20,
                          unique_signatures=50 - hits, detection_on=True)
    assert stats.total_vectors == 100
    assert stats.total_hits == 30
    assert stats.overall_hit_fraction == 0.3
    assert 0 < stats.mac_reduction() < 1
    assert set(stats.layers()) == {"a", "b"}
    summary = stats.summary()
    assert summary["layers"] == 2


def test_reuse_stats_empty_edge_cases():
    stats = ReuseStats()
    assert stats.overall_hit_fraction == 0.0
    assert stats.mac_reduction() == 0.0
    assert stats.get("missing", "forward") is None


def test_record_for_is_idempotent():
    stats = ReuseStats()
    first = stats.record_for("x", "forward")
    second = stats.record_for("x", "forward")
    assert first is second
