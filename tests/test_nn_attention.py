"""Tests for the attention layers."""

import numpy as np

from repro.nn import MultiHeadSelfAttention, SelfAttention
from tests.helpers import numerical_gradient, relative_error

RNG = np.random.default_rng(7)


def test_self_attention_matches_paper_formula():
    layer = SelfAttention(scale=False)
    x = RNG.normal(size=(1, 4, 3))
    out = layer.forward(x)
    expected = (x[0] @ x[0].T) @ x[0]
    np.testing.assert_allclose(out[0], expected)


def test_self_attention_scaling():
    layer = SelfAttention(scale=True)
    x = RNG.normal(size=(1, 4, 16))
    out = layer.forward(x)
    expected = ((x[0] @ x[0].T) / 4.0) @ x[0]
    np.testing.assert_allclose(out[0], expected)


def test_self_attention_input_gradient():
    layer = SelfAttention()
    x = RNG.normal(size=(2, 3, 4))
    out = layer.forward(x)
    upstream = RNG.normal(size=out.shape)
    grad = layer.backward(upstream)

    def loss():
        return float(np.sum(layer.forward(x) * upstream))

    numeric = numerical_gradient(loss, x)
    assert relative_error(grad, numeric) < 1e-4


def test_multihead_shapes():
    layer = MultiHeadSelfAttention(embed_dim=8, num_heads=2, seed=0)
    out = layer.forward(RNG.normal(size=(2, 5, 8)))
    assert out.shape == (2, 5, 8)


def test_multihead_rejects_bad_head_count():
    import pytest
    with pytest.raises(ValueError):
        MultiHeadSelfAttention(embed_dim=10, num_heads=3)


def test_multihead_input_gradient():
    layer = MultiHeadSelfAttention(embed_dim=4, num_heads=2, seed=1)
    x = RNG.normal(size=(1, 3, 4))
    out = layer.forward(x)
    upstream = RNG.normal(size=out.shape)
    layer.zero_grad()
    grad = layer.backward(upstream)

    def loss():
        return float(np.sum(layer.forward(x) * upstream))

    numeric = numerical_gradient(loss, x)
    assert relative_error(grad, numeric) < 1e-3


def test_multihead_parameter_gradient():
    layer = MultiHeadSelfAttention(embed_dim=4, num_heads=2, seed=2)
    x = RNG.normal(size=(1, 3, 4))
    upstream = RNG.normal(size=(1, 3, 4))
    layer.zero_grad()
    layer.forward(x)
    layer.backward(upstream)
    analytic = layer.q_proj.weight.grad.copy()

    def loss():
        return float(np.sum(layer.forward(x) * upstream))

    numeric = numerical_gradient(loss, layer.q_proj.weight.value)
    assert relative_error(analytic, numeric) < 1e-3


def test_attention_engine_is_used_for_self_attention():
    class CountingEngine:
        def __init__(self):
            self.calls = 0

        def matmul(self, a, b, *, layer, phase="forward"):
            self.calls += 1
            return a @ b

    engine = CountingEngine()
    layer = SelfAttention()
    layer.engine = engine
    layer.forward(RNG.normal(size=(2, 3, 4)))
    # Two engine matmuls per sequence (scores and context).
    assert engine.calls == 4
