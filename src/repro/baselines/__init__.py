"""Comparison schemes used by the paper's evaluation (§VII-D and Fig. 3)."""

from repro.baselines.bloom import BloomFilter, BloomFilterSimilarity
from repro.baselines.capture import CaptureEngine
from repro.baselines.ucnn import UCNNBound
from repro.baselines.zero_pruning import ZeroPruningBound
from repro.baselines.unlimited_similarity import UnlimitedSimilarityBound

__all__ = [
    "BloomFilter",
    "BloomFilterSimilarity",
    "CaptureEngine",
    "UCNNBound",
    "ZeroPruningBound",
    "UnlimitedSimilarityBound",
]
