"""A compute engine that records every (vectors, weights) pair it sees.

The UCNN, zero-pruning and unlimited-similarity bounds all need the raw
operands of every dot-product stage of a model — exactly the calls a
layer would route to the MERCURY reuse engine.  ``CaptureEngine``
performs the exact computation (no reuse) while keeping references to
the operands for later analysis.
"""

from __future__ import annotations

import numpy as np


class CaptureEngine:
    """Exact matmul engine that archives operands per (layer, phase)."""

    def __init__(self, capture_backward: bool = True):
        self.capture_backward = capture_backward
        # (layer, phase) -> list of (vectors, weights)
        self.captured: dict[tuple[str, str], list] = {}

    def matmul(self, vectors: np.ndarray, weights: np.ndarray, *,
               layer: str, phase: str = "forward") -> np.ndarray:
        vectors = np.asarray(vectors, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        if phase == "forward" or self.capture_backward:
            self.captured.setdefault((layer, phase), []).append((vectors, weights))
        return vectors @ weights

    def end_iteration(self, loss: float | None = None) -> None:
        """Interface parity with the reuse engine; nothing to adapt."""

    # ------------------------------------------------------------------
    def layers(self, phase: str = "forward") -> list[str]:
        return [layer for (layer, rec_phase) in self.captured
                if rec_phase == phase]

    def operands(self, layer: str, phase: str = "forward") -> list:
        return self.captured.get((layer, phase), [])

    def total_macs(self, phase: str | None = None) -> int:
        total = 0
        for (_, rec_phase), calls in self.captured.items():
            if phase is not None and rec_phase != phase:
                continue
            for vectors, weights in calls:
                total += vectors.shape[0] * vectors.shape[1] * weights.shape[1]
        return total

    def clear(self) -> None:
        self.captured.clear()
