"""UCNN comparison (Figure 17a).

UCNN [Hegde et al., ISCA'18] exploits *weight repetition*: after
quantising a filter to a small number of bits, many weights share the
same value, so the dot product can be factorised — activations that
multiply the same weight value are summed first and multiplied once.

The original implementation is not public; the paper therefore compares
against the *maximum achievable* saving of UCNN for 6/7/8-bit
quantisation, and this module reproduces that methodology: for every
captured dot-product stage it quantises the weights, counts the unique
weight values per filter, and charges one multiplication per unique
value plus the unavoidable additions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.capture import CaptureEngine


@dataclass
class UCNNLayerReport:
    layer: str
    baseline_ops: float
    reduced_ops: float

    @property
    def speedup(self) -> float:
        if self.reduced_ops == 0:
            return 1.0
        return self.baseline_ops / self.reduced_ops


class UCNNBound:
    """Maximum-achievable UCNN speedup under uniform weight quantisation."""

    def __init__(self, quantization_bits: int = 8):
        if not 1 <= quantization_bits <= 16:
            raise ValueError("quantization_bits must be between 1 and 16")
        self.quantization_bits = quantization_bits

    # ------------------------------------------------------------------
    def quantize(self, weights: np.ndarray) -> np.ndarray:
        """Uniform symmetric quantisation to ``quantization_bits`` bits."""
        weights = np.asarray(weights, dtype=np.float64)
        max_abs = np.max(np.abs(weights))
        if max_abs == 0:
            return np.zeros_like(weights, dtype=np.int64)
        levels = 2 ** (self.quantization_bits - 1) - 1
        return np.round(weights / max_abs * levels).astype(np.int64)

    def layer_report(self, layer: str, vectors: np.ndarray,
                     weights: np.ndarray) -> UCNNLayerReport:
        """Operation counts for one dot-product stage.

        Baseline: every vector x filter dot product costs K multiplies
        and K-1 additions.  UCNN's bound: per filter only ``unique``
        multiplies remain (one per distinct quantised weight value) while
        the additions stay (activation-group sums plus the final merge).
        """
        num_vectors, vector_length = vectors.shape
        num_filters = weights.shape[1]
        quantised = self.quantize(weights)

        baseline_ops = num_vectors * num_filters * (2 * vector_length - 1)
        reduced_ops = 0.0
        for filter_index in range(num_filters):
            unique_values = np.unique(quantised[:, filter_index])
            unique_nonzero = int(np.count_nonzero(unique_values))
            multiplies = max(unique_nonzero, 1)
            additions = vector_length - 1
            reduced_ops += num_vectors * (multiplies + additions)
        return UCNNLayerReport(layer=layer, baseline_ops=float(baseline_ops),
                               reduced_ops=float(reduced_ops))

    # ------------------------------------------------------------------
    def model_speedup(self, capture: CaptureEngine,
                      phase: str = "forward") -> float:
        """Aggregate maximum speedup over all captured stages."""
        reports = self.model_reports(capture, phase)
        baseline = sum(report.baseline_ops for report in reports)
        reduced = sum(report.reduced_ops for report in reports)
        if reduced == 0:
            return 1.0
        return baseline / reduced

    def model_reports(self, capture: CaptureEngine,
                      phase: str = "forward") -> list[UCNNLayerReport]:
        reports = []
        for (layer, rec_phase), calls in capture.captured.items():
            if rec_phase != phase:
                continue
            for vectors, weights in calls:
                reports.append(self.layer_report(layer, vectors, weights))
        return reports
