"""Event bus semantics: delivery, filtering, exact backpressure.

The bus is the contract the whole telemetry layer rests on — emission
never blocks or raises, every subscriber owns a bounded queue, and loss
is counted exactly.  The property suite drives random emit/drain
schedules against a trivial reference model to pin the drop accounting.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import DEFAULT_CAPACITY, Event, EventBus, Subscription


class TestEvent:
    def test_as_tuple_round_trips_through_the_forwarding_form(self):
        event = Event("serve.batch", source="shard2", payload={"rows": 4})
        kind, source, payload = event.as_tuple()
        assert Event(kind, source, payload) == event

    def test_defaults(self):
        event = Event("x")
        assert event.source == ""
        assert event.payload == {}


class TestDelivery:
    def test_emit_reaches_every_matching_subscriber(self):
        bus = EventBus()
        everything = bus.subscribe(name="all")
        batches = bus.subscribe(kinds=["batcher.batch"], name="batches")
        bus.emit("batcher.batch", source="shard0", size=8)
        bus.emit("serve.window", window=0)
        assert [event.kind for event in everything.drain()] \
            == ["batcher.batch", "serve.window"]
        only = batches.drain()
        assert [event.kind for event in only] == ["batcher.batch"]
        assert only[0].payload == {"size": 8}
        assert only[0].source == "shard0"

    def test_emit_with_no_subscribers_only_counts(self):
        bus = EventBus()
        for _ in range(5):
            bus.emit("serve.batch")
        assert bus.emitted == 5
        assert bus.dropped == 0

    def test_drain_hands_over_and_resets(self):
        bus = EventBus()
        sub = bus.subscribe()
        bus.emit("a")
        assert len(sub) == 1
        assert len(sub.drain()) == 1
        assert len(sub) == 0
        assert sub.drain() == []
        # received is cumulative across drains.
        bus.emit("b")
        assert sub.received == 2

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        sub = bus.subscribe()
        bus.unsubscribe(sub)
        bus.emit("a")
        assert len(sub) == 0
        assert bus.emitted == 1

    def test_emit_event_forwarding_path_matches_emit(self):
        bus = EventBus()
        sub = bus.subscribe(kinds=["serve.batch"])
        bus.emit_event(Event("serve.batch", "shard3", {"rows": 2}))
        bus.emit_event(Event("other"))
        events = sub.drain()
        assert len(events) == 1
        assert events[0].source == "shard3"
        assert bus.emitted == 2


class TestBackpressure:
    def test_full_queue_drops_exactly_and_never_raises(self):
        bus = EventBus()
        sub = bus.subscribe(capacity=3)
        for index in range(10):
            bus.emit("tick", index=index)
        assert len(sub) == 3
        assert sub.dropped == 7
        assert sub.received == 3
        assert bus.dropped == 7
        # The oldest events survive (queue, not ring).
        assert [event.payload["index"] for event in sub.drain()] \
            == [0, 1, 2]
        # Draining frees capacity; the drop counter stays cumulative.
        bus.emit("tick", index=10)
        assert len(sub) == 1
        assert sub.dropped == 7

    def test_drops_are_per_subscriber(self):
        bus = EventBus()
        tiny = bus.subscribe(capacity=1)
        roomy = bus.subscribe(capacity=100)
        for _ in range(4):
            bus.emit("tick")
        assert tiny.dropped == 3
        assert roomy.dropped == 0
        assert bus.dropped == 3
        stats = bus.stats()
        assert stats["emitted"] == 4
        assert stats["dropped"] == 3
        by_name = {row["name"]: row for row in stats["subscribers"]}
        assert by_name[""]["buffered"] in (1, 4)

    def test_zero_capacity_drops_everything(self):
        bus = EventBus()
        sub = bus.subscribe(capacity=0)
        bus.emit("tick")
        assert sub.dropped == 1
        assert len(sub) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Subscription(capacity=-1)

    def test_default_capacity_is_generous(self):
        assert EventBus().subscribe().capacity == DEFAULT_CAPACITY


@given(st.lists(st.one_of(
    st.integers(min_value=1, max_value=40),   # emit a burst of n events
    st.just("drain")),                        # drain the queue
    max_size=30),
    st.integers(min_value=0, max_value=16))   # queue capacity
def test_drop_counter_is_exact_under_any_schedule(schedule, capacity):
    """Property: drops == emitted - received, for every emit/drain
    interleaving, and the buffered count never exceeds capacity."""
    bus = EventBus()
    sub = bus.subscribe(capacity=capacity)
    emitted = 0
    expected_buffered = 0
    expected_dropped = 0
    for step in schedule:
        if step == "drain":
            assert len(sub.drain()) == expected_buffered
            expected_buffered = 0
        else:
            for _ in range(step):
                bus.emit("tick")
                emitted += 1
                if expected_buffered < capacity:
                    expected_buffered += 1
                else:
                    expected_dropped += 1
        assert len(sub) == expected_buffered
        assert sub.dropped == expected_dropped
    assert bus.emitted == emitted
    assert sub.received == emitted - expected_dropped
    assert bus.dropped == expected_dropped
