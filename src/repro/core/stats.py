"""Reuse statistics.

The functional reuse engine records, for every (layer, phase) pair, how
many vectors were processed, how they were classified (HIT / MAU / MNU),
the vector length, the number of weight columns and the signature length
in force.  The accelerator cycle model consumes these records to produce
every performance figure in the paper, so they are the contract between
the functional and the timing layers of this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LayerReuseStats:
    """Accumulated reuse statistics for one (layer, phase)."""

    layer: str
    phase: str
    vector_length: int = 0
    num_filters: int = 0
    signature_bits: int = 0
    calls: int = 0
    total_vectors: int = 0
    hits: int = 0
    mau: int = 0
    mnu: int = 0
    unique_signatures: int = 0
    similarity_detection_on: bool = True
    # Vectors whose signature had to be generated vs. reloaded from the
    # signature table saved during forward propagation (§III-C2); the
    # cycle model only charges signature-generation cycles for the
    # former.
    signature_computed_vectors: int = 0
    signature_reloaded_vectors: int = 0

    @property
    def misses(self) -> int:
        return self.mau + self.mnu

    @property
    def hit_fraction(self) -> float:
        if self.total_vectors == 0:
            return 0.0
        return self.hits / self.total_vectors

    @property
    def computed_vectors(self) -> int:
        """Vectors whose dot products were actually executed."""
        return self.total_vectors - self.hits

    @property
    def skipped_macs(self) -> int:
        """Multiply-accumulate operations skipped thanks to reuse."""
        return self.hits * self.vector_length * self.num_filters

    @property
    def executed_macs(self) -> int:
        return self.computed_vectors * self.vector_length * self.num_filters

    @property
    def baseline_macs(self) -> int:
        return self.total_vectors * self.vector_length * self.num_filters

    def merge_call(self, *, vectors: int, hits: int, mau: int, mnu: int,
                   vector_length: int, num_filters: int, signature_bits: int,
                   unique_signatures: int, detection_on: bool,
                   signatures_reloaded: bool = False) -> None:
        """Accumulate the outcome of one matmul call."""
        self.calls += 1
        self.total_vectors += vectors
        self.hits += hits
        self.mau += mau
        self.mnu += mnu
        self.vector_length = vector_length
        self.num_filters = num_filters
        self.signature_bits = signature_bits
        self.unique_signatures += unique_signatures
        self.similarity_detection_on = detection_on
        if detection_on:
            if signatures_reloaded:
                self.signature_reloaded_vectors += vectors
            else:
                self.signature_computed_vectors += vectors


@dataclass
class ReuseStats:
    """All per-layer records for one training run (or one batch)."""

    records: dict = field(default_factory=dict)

    def record_for(self, layer: str, phase: str) -> LayerReuseStats:
        key = (layer, phase)
        if key not in self.records:
            self.records[key] = LayerReuseStats(layer=layer, phase=phase)
        return self.records[key]

    def layers(self, phase: str | None = None) -> list[str]:
        names = []
        for (layer, rec_phase) in self.records:
            if phase is None or rec_phase == phase:
                if layer not in names:
                    names.append(layer)
        return names

    def get(self, layer: str, phase: str) -> LayerReuseStats | None:
        return self.records.get((layer, phase))

    def all_records(self) -> list[LayerReuseStats]:
        return list(self.records.values())

    # ------------------------------------------------------------------
    @property
    def total_vectors(self) -> int:
        return sum(r.total_vectors for r in self.records.values())

    @property
    def total_hits(self) -> int:
        return sum(r.hits for r in self.records.values())

    @property
    def total_skipped_macs(self) -> int:
        return sum(r.skipped_macs for r in self.records.values())

    @property
    def total_baseline_macs(self) -> int:
        return sum(r.baseline_macs for r in self.records.values())

    @property
    def overall_hit_fraction(self) -> float:
        total = self.total_vectors
        if total == 0:
            return 0.0
        return self.total_hits / total

    def mac_reduction(self) -> float:
        """Fraction of baseline MACs avoided through reuse."""
        baseline = self.total_baseline_macs
        if baseline == 0:
            return 0.0
        return self.total_skipped_macs / baseline

    def clear(self) -> None:
        self.records.clear()

    def summary(self) -> dict:
        """Aggregate view used by reports and benchmarks."""
        return {
            "total_vectors": self.total_vectors,
            "total_hits": self.total_hits,
            "hit_fraction": self.overall_hit_fraction,
            "mac_reduction": self.mac_reduction(),
            "layers": len(self.layers()),
        }
