"""VGG-13 case study: per-layer similarity, reuse and projected cycles.

Reproduces the flavour of the paper's Figures 1 and 15 from the command
line.  Run with:  python examples/vgg13_case_study.py
"""

from repro import MercuryConfig, ReuseEngine
from repro.accelerator import MercurySimulator
from repro.accelerator.workloads import build_workload, workload_to_stats
from repro.analysis import format_table, measure_layer_similarity
from repro.data import ClusteredImageDataset, ImageDatasetConfig
from repro.models import build_model
from repro.nn import CrossEntropyLoss


def main() -> None:
    dataset = ClusteredImageDataset(ImageDatasetConfig(num_classes=4,
                                                       samples_per_class=8,
                                                       image_size=24))
    model = build_model("vgg13", num_classes=4, seed=1)

    # --- Figure 1: similarity among input and gradient vectors ----------
    similarity = measure_layer_similarity(model, dataset.images[:8],
                                          dataset.labels[:8],
                                          signature_bits=20)
    rows = [[f"layer-{i + 1}", item.input_similarity * 100,
             item.gradient_similarity * 100, item.unique_input_vectors]
            for i, item in enumerate(similarity)]
    print("Per-layer similarity (scaled VGG-13, 20-bit signatures)")
    print(format_table(["layer", "input sim (%)", "gradient sim (%)",
                        "unique vectors"], rows, "{:.1f}"))

    # --- Figure 15a: MCACHE access mix during one training batch --------
    config = MercuryConfig(signature_bits=20, adaptive_stoppage=False)
    engine = ReuseEngine(config)
    model.set_engine(engine)
    loss_fn = CrossEntropyLoss()
    logits = model(dataset.images[:8])
    loss = loss_fn(logits, dataset.labels[:8])
    model.zero_grad()
    model.backward(loss_fn.backward())
    engine.end_iteration(loss)

    access_rows = []
    conv_layers = [l for l in engine.stats.layers("forward") if "Conv2D" in l]
    for index, layer in enumerate(conv_layers):
        record = engine.stats.get(layer, "forward")
        total = max(record.total_vectors, 1)
        access_rows.append([f"layer-{index + 1}", record.hits / total * 100,
                            record.mau / total * 100, record.mnu / total * 100])
    print("\nMCACHE access type per layer (%)")
    print(format_table(["layer", "HIT", "MAU", "MNU"], access_rows, "{:.1f}"))

    # --- Figure 15b at paper scale: projected per-layer cycles ----------
    report = MercurySimulator(config).simulate(
        workload_to_stats(build_workload("vgg13")), "vgg13",
        apply_analytic_stoppage=True)
    print(f"\nPaper-scale VGG-13 projection: speedup {report.speedup:.2f}x, "
          f"signature share {report.signature_fraction:.1%}")


if __name__ == "__main__":
    main()
