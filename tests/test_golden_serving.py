"""Golden serving determinism: pinned trace → pinned reuse statistics.

A fixed-seed Zipfian load-generator trace is replayed through the
:class:`~repro.serving.server.InferenceServer` in two configurations:

* ``request_exact`` (request cache, exact check, per-request compute):
  every served output must be **byte-identical** to the engine-less
  per-request forward oracle, and the full hit-statistics payload is
  pinned in ``tests/golden/serving_squeezenet.json``;
* ``vector_exact`` (per-layer persistent cache, exact check): reuse
  only copies rows produced by identical vectors, so outputs stay
  within BLAS shape noise of the oracle; the row-level counters are
  pinned alongside.

Any change to the load generator, the replay batching discipline, the
RPQ signatures or the cache admission logic shows up here as a counter
mismatch instead of silently shifting every serving figure.

Regenerate after an *intentional* behaviour change::

    GOLDEN_REGENERATE=1 PYTHONPATH=src python -m pytest tests/test_golden_serving.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.models.registry import build_model
from repro.serving import (BatcherConfig, InferenceServer, ServingPolicy,
                           TrafficConfig, build_request_pool, generate_trace)
from repro.serving.loadgen import trace_summary

GOLDEN_PATH = Path(__file__).parent / "golden" / "serving_squeezenet.json"

TRACE_CONFIG = TrafficConfig(pattern="zipfian", num_requests=160, seed=11)
POOL_SIZE = 16
MODEL_SEED = 5
BATCHER = BatcherConfig(max_batch_size=8, max_wait_s=0.001)

POLICIES = {
    "request_exact": ServingPolicy(request_cache=True, vector_cache=False,
                                   exact_check=True, compute="per_request"),
    "vector_exact": ServingPolicy(request_cache=False, vector_cache=True,
                                  exact_check=True, compute="batched",
                                  entries=8192, ways=16),
}


def _pieces():
    pool = build_request_pool("squeezenet", pool_size=POOL_SIZE,
                              image_size=12, seed=3)
    trace = generate_trace(TRACE_CONFIG, len(pool))
    return pool, trace


def _serve(policy_name: str):
    pool, trace = _pieces()
    model = build_model("squeezenet", num_classes=4, seed=MODEL_SEED)
    server = InferenceServer(model, POLICIES[policy_name], BATCHER)
    outputs, report = server.replay(trace, pool)
    oracle = server.oracle_outputs(pool)
    return trace, outputs, report, oracle


def _statistics_payload() -> dict:
    payload: dict = {"trace": trace_summary(_pieces()[1])}
    for name in POLICIES:
        trace, outputs, report, oracle = _serve(name)
        identical = sum(
            1 for request, output in zip(trace, outputs)
            if np.array_equal(output, oracle[request.pool_index]))
        payload[name] = {
            "batches": report.batches,
            "hit_rate": report.hit_rate,
            "request_cache": report.request_cache,
            "vector_cache": report.vector_cache,
            "bit_identical": identical,
        }
    return payload


@pytest.fixture(scope="module")
def golden() -> dict:
    payload = _statistics_payload()
    if os.environ.get("GOLDEN_REGENERATE"):
        GOLDEN_PATH.write_text(json.dumps(payload, indent=2,
                                          sort_keys=True) + "\n")
    assert GOLDEN_PATH.exists(), \
        "golden file missing; run with GOLDEN_REGENERATE=1"
    return {"current": payload,
            "pinned": json.loads(GOLDEN_PATH.read_text())}


# ----------------------------------------------------------------------
# Sharded warm start: donor prefix → snapshot → restore → held-out suffix
# ----------------------------------------------------------------------
WARM_GOLDEN_PATH = Path(__file__).parent / "golden" / \
    "serving_warm_start.json"
WARM_SHARDS = 2
WARM_PREFIX = 100  # trace[:100] trains the donor; trace[100:] is held out


def _sharded_server():
    model = build_model("squeezenet", num_classes=4, seed=MODEL_SEED)
    return InferenceServer(model, POLICIES["request_exact"], BATCHER,
                           shards=WARM_SHARDS)


def _warm_start_payload() -> dict:
    pool, trace = _pieces()
    prefix, suffix = trace[:WARM_PREFIX], trace[WARM_PREFIX:]

    donor = _sharded_server()
    _, donor_report = donor.replay(prefix, pool)
    restored = _sharded_server()
    outputs = None
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        donor.snapshot(tmp)
        restored.restore(tmp)
        outputs, suffix_report = restored.replay(suffix, pool)
    oracle = restored.oracle_outputs(pool)
    identical = sum(
        1 for request, output in zip(suffix, outputs)
        if np.array_equal(output, oracle[request.pool_index]))
    return {
        "shards": WARM_SHARDS,
        "prefix_requests": len(prefix),
        "suffix_requests": len(suffix),
        "donor": {"hit_rate": donor_report.hit_rate,
                  "request_cache": donor_report.request_cache,
                  "shard_requests": [row["requests"] for row
                                     in donor_report.shard_stats]},
        "restored_suffix": {"hit_rate": suffix_report.hit_rate,
                            "request_cache": suffix_report.request_cache,
                            "shard_requests": [row["requests"] for row
                                               in suffix_report.shard_stats]},
        "suffix_bit_identical": identical,
    }


@pytest.fixture(scope="module")
def warm_golden() -> dict:
    payload = _warm_start_payload()
    if os.environ.get("GOLDEN_REGENERATE"):
        WARM_GOLDEN_PATH.write_text(json.dumps(payload, indent=2,
                                               sort_keys=True) + "\n")
    assert WARM_GOLDEN_PATH.exists(), \
        "golden file missing; run with GOLDEN_REGENERATE=1"
    return {"current": payload,
            "pinned": json.loads(WARM_GOLDEN_PATH.read_text())}


class TestGoldenWarmStart:
    def test_warm_start_statistics_match_pinned(self, warm_golden):
        assert warm_golden["current"] == warm_golden["pinned"]

    def test_restored_suffix_matches_live_continuation(self):
        """Restore == the donor simply continuing on the suffix."""
        pool, trace = _pieces()
        prefix, suffix = trace[:WARM_PREFIX], trace[WARM_PREFIX:]
        continuing = _sharded_server()
        continuing.replay(prefix, pool)
        expected_outputs, expected_report = continuing.replay(suffix, pool)

        donor = _sharded_server()
        donor.replay(prefix, pool)
        restored = _sharded_server()
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            donor.snapshot(tmp)
            restored.restore(tmp)
        outputs, report = restored.replay(suffix, pool)
        for left, right in zip(expected_outputs, outputs):
            assert left.tobytes() == right.tobytes()
        assert report.request_cache == expected_report.request_cache
        # Cache state matches; the routed-request telemetry is
        # per-process, so the restored server only counts the suffix.
        def cache_state(rows):
            return [{key: value for key, value in row.items()
                     if key != "requests"} for row in rows]
        assert cache_state(report.shard_stats) == \
            cache_state(expected_report.shard_stats)

    def test_pinned_file_shows_hit_carryover(self, warm_golden):
        pinned = warm_golden["pinned"]
        # The held-out suffix replays against warm caches, so its hit
        # rate must beat the donor's cold-start run (which paid every
        # first sighting) — that is the carryover the snapshot buys.
        assert pinned["restored_suffix"]["hit_rate"] > \
            pinned["donor"]["hit_rate"]
        assert pinned["suffix_bit_identical"] == \
            pinned["suffix_requests"]
        assert pinned["shards"] == WARM_SHARDS


# ----------------------------------------------------------------------
# Tiered serving: LRU eviction + hot-key replication + shared L2
# ----------------------------------------------------------------------
TIERED_GOLDEN_PATH = Path(__file__).parent / "golden" / \
    "serving_tiered.json"
TIERED_SHARDS = 2
# Small, rotating-hot-set trace so every tiering mechanism actually
# fires: 8 fully-associative lines per shard overflow (evictions), the
# Zipf head shifts mid-trace (replacement earns hits), and the hottest
# signatures cross the replication threshold.
TIERED_TRACE = TrafficConfig(pattern="zipfian", num_requests=160,
                             zipf_rotate_every=40, seed=11)
TIERED_POOL_SIZE = 32
TIERED_POLICY = ServingPolicy(request_cache=True, vector_cache=False,
                              exact_check=True, compute="per_request",
                              entries=8, ways=8, eviction="lru",
                              replicate_top=4)


def _tiered_pieces():
    pool = build_request_pool("squeezenet", pool_size=TIERED_POOL_SIZE,
                              image_size=12, seed=3)
    trace = generate_trace(TIERED_TRACE, len(pool))
    return pool, trace


def _tiered_serve():
    from repro.serving import SharedL2Cache
    pool, trace = _tiered_pieces()
    model = build_model("squeezenet", num_classes=4, seed=MODEL_SEED)
    server = InferenceServer(model, TIERED_POLICY, BATCHER,
                             shards=TIERED_SHARDS, l2=SharedL2Cache())
    outputs, report = server.replay(trace, pool)
    oracle = server.oracle_outputs(pool)
    return trace, outputs, report, oracle


def _tiered_payload() -> dict:
    trace, outputs, report, oracle = _tiered_serve()
    identical = sum(
        1 for request, output in zip(trace, outputs)
        if np.array_equal(output, oracle[request.pool_index]))
    return {
        "shards": TIERED_SHARDS,
        "trace": trace_summary(trace),
        "hit_rate": report.hit_rate,
        "request_cache": report.request_cache,
        "l2": report.l2,
        "shard_requests": [row["requests"] for row in report.shard_stats],
        "bit_identical": identical,
    }


@pytest.fixture(scope="module")
def tiered_golden() -> dict:
    payload = _tiered_payload()
    if os.environ.get("GOLDEN_REGENERATE"):
        TIERED_GOLDEN_PATH.write_text(json.dumps(payload, indent=2,
                                                 sort_keys=True) + "\n")
    assert TIERED_GOLDEN_PATH.exists(), \
        "golden file missing; run with GOLDEN_REGENERATE=1"
    return {"current": payload,
            "pinned": json.loads(TIERED_GOLDEN_PATH.read_text())}


class TestGoldenTieredServing:
    def test_tiered_statistics_match_pinned(self, tiered_golden):
        assert tiered_golden["current"] == tiered_golden["pinned"]

    def test_tiered_outputs_byte_identical_to_oracle(self):
        """Eviction/replication/L2 move rows around, never change them."""
        trace, outputs, _, oracle = _tiered_serve()
        for request, output in zip(trace, outputs):
            assert output.tobytes() == \
                oracle[request.pool_index].tobytes()

    def test_pinned_file_shows_every_tier_working(self, tiered_golden):
        pinned = tiered_golden["pinned"]
        assert pinned["bit_identical"] == TIERED_TRACE.num_requests
        # Capacity pressure really evicted; the hot keys really
        # replicated; the L2 really caught post-eviction repeats.
        assert pinned["request_cache"]["evicted"] > 0
        assert pinned["request_cache"]["replicated"] > 0
        assert pinned["l2"]["hits"] > 0
        assert pinned["hit_rate"] > 0.2


class TestGoldenServing:
    def test_exact_mode_outputs_byte_identical(self):
        trace, outputs, report, oracle = _serve("request_exact")
        for request, output in zip(trace, outputs):
            assert output.tobytes() == \
                oracle[request.pool_index].tobytes()
        assert report.hit_rate > 0

    def test_vector_mode_within_blas_shape_noise(self):
        trace, outputs, report, oracle = _serve("vector_exact")
        deviation = max(
            float(np.max(np.abs(output - oracle[request.pool_index])))
            for request, output in zip(trace, outputs))
        assert deviation < 1e-9
        assert report.hit_rate > 0

    def test_hit_statistics_match_pinned(self, golden):
        assert golden["current"] == golden["pinned"]

    def test_pinned_file_claims_full_exactness(self, golden):
        pinned = golden["pinned"]
        assert pinned["request_exact"]["bit_identical"] == \
            TRACE_CONFIG.num_requests
        assert pinned["request_exact"]["hit_rate"] > 0.5
        assert pinned["vector_exact"]["hit_rate"] > 0.3
