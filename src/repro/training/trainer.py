"""Training loops for the baseline and MERCURY configurations.

The trainer works for both the CNN classification task (integer labels)
and the transformer translation task (per-position integer targets); the
loss is softmax cross entropy in both cases, so the only difference is
the label shape.

When an engine is attached (``ReuseEngine`` for MERCURY or
``ExactCountingEngine``/``CaptureEngine`` for baselines and analysis),
the trainer calls ``engine.end_iteration(loss)`` after every optimizer
step so the adaptation policies see the loss trajectory exactly as the
paper describes (§III-D).

With a telemetry bus attached (``Trainer(..., bus=...)`` — an
:class:`repro.obs.bus.EventBus`, usually via
:class:`repro.obs.Telemetry`), :meth:`Trainer.fit` emits one
``training.epoch`` event per epoch carrying the loss/accuracy point
and the engine's reuse deltas (vectors, hits, flash clears, signature
length), so training and serving report reuse through one metric
vocabulary (``repro_reuse_*{phase="training"}`` next to
``phase="serving"`` — see :data:`repro.obs.metrics.METRIC_NAMES`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.loaders import BatchLoader
from repro.nn.losses import CrossEntropyLoss
from repro.nn.optim import SGD, Adam
from repro.training.metrics import top1_accuracy


@dataclass
class TrainingConfig:
    """Hyper-parameters of one training run."""

    epochs: int = 3
    batch_size: int = 8
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 0.0
    optimizer: str = "sgd"
    shuffle: bool = True
    seed: int = 0

    def __post_init__(self):
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.optimizer not in ("sgd", "adam"):
            raise ValueError("optimizer must be 'sgd' or 'adam'")


@dataclass
class TrainingResult:
    """Loss/accuracy history of one training run.

    ``iteration_losses`` holds the per-step loss trajectory (what the
    adaptation policies observe); ``epoch_losses`` its per-epoch means.
    The record round-trips through plain dicts so sweep rows and golden
    regression files can embed it verbatim.
    """

    epoch_losses: list = field(default_factory=list)
    epoch_train_accuracy: list = field(default_factory=list)
    iteration_losses: list = field(default_factory=list)
    iterations: int = 0
    final_validation_accuracy: float | None = None

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")

    def to_dict(self) -> dict:
        """JSON-safe view of the full history."""
        return {
            "epoch_losses": [float(v) for v in self.epoch_losses],
            "epoch_train_accuracy": [float(v)
                                     for v in self.epoch_train_accuracy],
            "iteration_losses": [float(v) for v in self.iteration_losses],
            "iterations": int(self.iterations),
            "final_validation_accuracy":
                None if self.final_validation_accuracy is None
                else float(self.final_validation_accuracy),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrainingResult":
        return cls(epoch_losses=list(payload["epoch_losses"]),
                   epoch_train_accuracy=list(payload["epoch_train_accuracy"]),
                   iteration_losses=list(payload.get("iteration_losses", [])),
                   iterations=payload["iterations"],
                   final_validation_accuracy=payload[
                       "final_validation_accuracy"])


class Trainer:
    """Runs epochs of minibatch SGD with an optional compute engine."""

    def __init__(self, model, config: TrainingConfig | None = None,
                 engine=None, bus=None):
        self.model = model
        self.config = config or TrainingConfig()
        self.engine = engine
        # Optional telemetry bus; fit() emits per-epoch reuse events.
        self.bus = bus
        if engine is not None:
            model.set_engine(engine)
        self.loss_fn = CrossEntropyLoss()
        if self.config.optimizer == "adam":
            self.optimizer = Adam(model.parameters(),
                                  lr=self.config.learning_rate,
                                  weight_decay=self.config.weight_decay)
        else:
            self.optimizer = SGD(model.parameters(),
                                 lr=self.config.learning_rate,
                                 momentum=self.config.momentum,
                                 weight_decay=self.config.weight_decay)

    # ------------------------------------------------------------------
    def train_step(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """One forward/backward/update step; returns the batch loss."""
        logits = self.model(inputs)
        loss = self.loss_fn(logits, targets)
        self.model.zero_grad()
        self.model.backward(self.loss_fn.backward())
        self.optimizer.step()
        if self.engine is not None:
            self.engine.end_iteration(loss)
        return loss

    def fit(self, inputs: np.ndarray, targets: np.ndarray,
            validation: tuple | None = None) -> TrainingResult:
        """Train for the configured number of epochs."""
        self.model.train()
        loader = BatchLoader(inputs, targets, batch_size=self.config.batch_size,
                             shuffle=self.config.shuffle, seed=self.config.seed)
        result = TrainingResult()
        reuse_before = self._reuse_totals()
        for epoch in range(self.config.epochs):
            losses = []
            for batch_inputs, batch_targets in loader:
                losses.append(self.train_step(batch_inputs, batch_targets))
                result.iterations += 1
            result.iteration_losses.extend(float(v) for v in losses)
            result.epoch_losses.append(float(np.mean(losses)))
            result.epoch_train_accuracy.append(
                self.evaluate(inputs, targets))
            reuse_before = self._emit_epoch(epoch, result, reuse_before)
        if validation is not None:
            result.final_validation_accuracy = self.evaluate(*validation)
        return result

    # ------------------------------------------------------------------
    def _reuse_totals(self) -> dict:
        """Lifetime reuse totals of the attached engine (zeros without
        one) — diffed per epoch by :meth:`_emit_epoch`."""
        stats = getattr(self.engine, "stats", None)
        session = getattr(self.engine, "session", None)
        return {
            "vectors": int(stats.total_vectors) if stats is not None else 0,
            "hits": int(stats.total_hits) if stats is not None else 0,
            "flash_clears": int(session.clears)
            if session is not None else 0,
        }

    def _emit_epoch(self, epoch: int, result: TrainingResult,
                    before: dict) -> dict:
        """Emit one ``training.epoch`` event; returns the new totals."""
        if self.bus is None:
            return before
        after = self._reuse_totals()
        vectors = after["vectors"] - before["vectors"]
        hits = after["hits"] - before["hits"]
        self.bus.emit(
            "training.epoch", source="trainer",
            epoch=epoch,
            loss=result.epoch_losses[-1],
            accuracy=result.epoch_train_accuracy[-1],
            vectors=vectors, hits=hits,
            flash_clears=after["flash_clears"] - before["flash_clears"],
            hit_rate=hits / vectors if vectors else 0.0,
            signature_bits=int(getattr(self.engine, "signature_bits", 0)
                               or 0))
        return after

    # ------------------------------------------------------------------
    def evaluate(self, inputs: np.ndarray, targets: np.ndarray,
                 batch_size: int | None = None, *,
                 use_engine: bool = False) -> float:
        """Top-1 accuracy of the current model on a labelled set.

        Evaluation is a measurement, not part of the training workload:
        the trainer-owned engine is detached for its duration (and
        reattached afterwards), so accuracy is computed exactly — the
        paper's Figure 13 methodology — and the engine's reuse
        statistics and §III-D adaptation state see only real training
        batches.  Pass ``use_engine=True`` to measure accuracy as the
        accelerator would deliver it, with reuse approximation on.
        """
        detach = not use_engine and self.engine is not None
        if detach:
            self.model.set_engine(None)
        self.model.eval()
        try:
            batch = batch_size or self.config.batch_size
            correct_weighted = 0.0
            count = 0
            for start in range(0, len(inputs), batch):
                chunk_inputs = inputs[start:start + batch]
                chunk_targets = targets[start:start + batch]
                logits = self.model(chunk_inputs)
                correct_weighted += top1_accuracy(logits, chunk_targets) * len(chunk_inputs)
                count += len(chunk_inputs)
        finally:
            self.model.train()
            if detach:
                self.model.set_engine(self.engine)
        return correct_weighted / max(count, 1)
