"""The telemetry event bus.

:class:`EventBus` decouples the serving hot path from every consumer
of its telemetry: components *emit* typed :class:`Event` records and
each subscriber owns a **bounded, drop-counting queue** — ``emit`` is
an O(1) append (or an O(1) drop when the subscriber is full), never a
block, never an exception.  Consumers *pull* with
:meth:`Subscription.drain`, so delivery happens at well-defined points
(window boundaries, report time, the ``/metrics`` scrape) and the
replay paths stay deterministic.

Loss is explicit, not silent: every subscription counts exactly how
many events it dropped (:attr:`Subscription.dropped`), and the bus
counts everything emitted (:attr:`EventBus.emitted`) — the difference
is auditable back-pressure, the property suite pins it.

Events are plain data (``kind``, ``source``, JSON-able ``payload``),
so worker processes can forward them over their existing ack pipes as
``(kind, source, payload)`` tuples and the supervisor re-emits them
onto its own bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default per-subscriber queue bound.  Generous for one replay window
#: between drains; small enough that a stalled consumer costs a fixed
#: amount of memory, not an unbounded backlog.
DEFAULT_CAPACITY = 65536


@dataclass(frozen=True)
class Event:
    """One typed telemetry record."""

    kind: str
    source: str = ""
    payload: dict = field(default_factory=dict)

    def as_tuple(self) -> tuple:
        """Pickle/pipe-friendly form for cross-process forwarding."""
        return (self.kind, self.source, self.payload)


class Subscription:
    """One consumer's bounded event queue.

    ``push`` (called by the bus) appends while below ``capacity`` and
    counts a drop otherwise — the producer side can never block on a
    slow consumer.  ``drain`` hands the buffered events over and
    resets the buffer; the drop counter is cumulative and exact.
    """

    __slots__ = ("name", "kinds", "capacity", "dropped", "received",
                 "_events")

    def __init__(self, kinds=None, capacity: int = DEFAULT_CAPACITY,
                 name: str = ""):
        if capacity < 0:
            raise ValueError("capacity cannot be negative")
        self.name = name
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.capacity = capacity
        self.dropped = 0
        self.received = 0
        self._events: list[Event] = []

    def matches(self, kind: str) -> bool:
        return self.kinds is None or kind in self.kinds

    def push(self, event: Event) -> bool:
        """Buffer one event; count (and report) a drop when full."""
        if len(self._events) >= self.capacity:
            self.dropped += 1
            return False
        self._events.append(event)
        self.received += 1
        return True

    def __len__(self) -> int:
        return len(self._events)

    def drain(self) -> list[Event]:
        """Hand over everything buffered since the last drain."""
        events = self._events
        self._events = []
        return events


class EventBus:
    """Typed events in, bounded subscriber queues out.

    Emission is wait-free by construction: no locks beyond the GIL, no
    allocation proportional to subscriber backlog, no exceptions on
    overflow.  With zero subscribers an ``emit`` is a counter bump.
    """

    __slots__ = ("emitted", "_subscriptions")

    def __init__(self):
        self.emitted = 0
        self._subscriptions: list[Subscription] = []

    # -- consumer side --------------------------------------------------
    def subscribe(self, kinds=None, capacity: int = DEFAULT_CAPACITY,
                  name: str = "") -> Subscription:
        """Register a consumer; ``kinds=None`` receives everything."""
        subscription = Subscription(kinds, capacity, name)
        self._subscriptions.append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        self._subscriptions = [existing for existing in self._subscriptions
                               if existing is not subscription]

    # -- producer side --------------------------------------------------
    def emit(self, kind: str, source: str = "", **payload) -> None:
        """Publish one event to every matching subscriber (never blocks)."""
        self.emitted += 1
        event = None
        for subscription in self._subscriptions:
            if subscription.matches(kind):
                if event is None:
                    event = Event(kind, source, payload)
                subscription.push(event)

    def emit_event(self, event: Event) -> None:
        """Publish an already-built event (the forwarding path)."""
        self.emitted += 1
        for subscription in self._subscriptions:
            if subscription.matches(event.kind):
                subscription.push(event)

    # -- accounting -----------------------------------------------------
    @property
    def dropped(self) -> int:
        """Total events dropped across every subscription (exact)."""
        return sum(subscription.dropped
                   for subscription in self._subscriptions)

    def stats(self) -> dict:
        return {
            "emitted": self.emitted,
            "dropped": self.dropped,
            "subscribers": [
                {"name": subscription.name,
                 "buffered": len(subscription),
                 "received": subscription.received,
                 "dropped": subscription.dropped}
                for subscription in self._subscriptions],
        }
