"""Composite building blocks shared by the model zoo.

Each block is a :class:`~repro.nn.module.Module` with an explicit
backward pass, including the branch-and-merge topologies (residual adds
and channel concatenations) that the plain Sequential container cannot
express.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers.activations import ReLU, GELU
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2D, LayerNorm
from repro.nn.layers.attention import MultiHeadSelfAttention
from repro.nn.module import Module


class ConvBNReLU(Module):
    """Convolution + batch norm + ReLU, the standard CNN building unit."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int = 3,
                 stride: int = 1, padding: int = 1, seed: int = 0):
        super().__init__()
        self.conv = Conv2D(in_channels, out_channels, kernel_size,
                           stride=stride, padding=padding, seed=seed)
        self.bn = BatchNorm2D(out_channels)
        self.relu = ReLU()

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.relu(self.bn(self.conv(x)))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.conv.backward(self.bn.backward(self.relu.backward(grad_output)))


class ResidualBlock(Module):
    """Two-convolution residual block with an optional projection shortcut."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 seed: int = 0):
        super().__init__()
        self.main1 = ConvBNReLU(in_channels, out_channels, 3, stride, 1, seed=seed)
        self.conv2 = Conv2D(out_channels, out_channels, 3, stride=1, padding=1,
                            seed=seed + 1)
        self.bn2 = BatchNorm2D(out_channels)
        self.relu = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.shortcut_conv = Conv2D(in_channels, out_channels, 1,
                                        stride=stride, padding=0, seed=seed + 2)
            self.shortcut_bn = BatchNorm2D(out_channels)
        else:
            self.shortcut_conv = None
            self.shortcut_bn = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        main = self.bn2(self.conv2(self.main1(x)))
        if self.shortcut_conv is not None:
            skip = self.shortcut_bn(self.shortcut_conv(x))
        else:
            skip = x
        return self.relu(main + skip)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_sum = self.relu.backward(grad_output)
        grad_main = self.main1.backward(
            self.conv2.backward(self.bn2.backward(grad_sum)))
        if self.shortcut_conv is not None:
            grad_skip = self.shortcut_conv.backward(
                self.shortcut_bn.backward(grad_sum))
        else:
            grad_skip = grad_sum
        return grad_main + grad_skip


class InceptionBlock(Module):
    """Three parallel branches (1x1, 1x1-3x3, 1x1-3x3-3x3) concatenated."""

    def __init__(self, in_channels: int, branch_channels: tuple[int, int, int],
                 seed: int = 0):
        super().__init__()
        b1, b2, b3 = branch_channels
        self.branch1 = ConvBNReLU(in_channels, b1, 1, 1, 0, seed=seed)
        self.branch2a = ConvBNReLU(in_channels, b2, 1, 1, 0, seed=seed + 1)
        self.branch2b = ConvBNReLU(b2, b2, 3, 1, 1, seed=seed + 2)
        self.branch3a = ConvBNReLU(in_channels, b3, 1, 1, 0, seed=seed + 3)
        self.branch3b = ConvBNReLU(b3, b3, 3, 1, 1, seed=seed + 4)
        self.branch3c = ConvBNReLU(b3, b3, 3, 1, 1, seed=seed + 5)
        self.branch_channels = (b1, b2, b3)

    @property
    def out_channels(self) -> int:
        return sum(self.branch_channels)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out1 = self.branch1(x)
        out2 = self.branch2b(self.branch2a(x))
        out3 = self.branch3c(self.branch3b(self.branch3a(x)))
        return np.concatenate([out1, out2, out3], axis=1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        b1, b2, b3 = self.branch_channels
        grad1 = grad_output[:, :b1]
        grad2 = grad_output[:, b1:b1 + b2]
        grad3 = grad_output[:, b1 + b2:b1 + b2 + b3]
        grad_in = self.branch1.backward(grad1)
        grad_in = grad_in + self.branch2a.backward(self.branch2b.backward(grad2))
        grad_in = grad_in + self.branch3a.backward(
            self.branch3b.backward(self.branch3c.backward(grad3)))
        return grad_in


class FireBlock(Module):
    """SqueezeNet fire module: squeeze 1x1 then parallel 1x1/3x3 expands."""

    def __init__(self, in_channels: int, squeeze_channels: int,
                 expand_channels: int, seed: int = 0):
        super().__init__()
        self.squeeze = ConvBNReLU(in_channels, squeeze_channels, 1, 1, 0, seed=seed)
        self.expand1 = ConvBNReLU(squeeze_channels, expand_channels, 1, 1, 0,
                                  seed=seed + 1)
        self.expand3 = ConvBNReLU(squeeze_channels, expand_channels, 3, 1, 1,
                                  seed=seed + 2)
        self.expand_channels = expand_channels

    @property
    def out_channels(self) -> int:
        return 2 * self.expand_channels

    def forward(self, x: np.ndarray) -> np.ndarray:
        squeezed = self.squeeze(x)
        return np.concatenate([self.expand1(squeezed), self.expand3(squeezed)],
                              axis=1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        split = self.expand_channels
        grad_squeezed = self.expand1.backward(grad_output[:, :split])
        grad_squeezed = grad_squeezed + self.expand3.backward(grad_output[:, split:])
        return self.squeeze.backward(grad_squeezed)


class SeparableBlock(Module):
    """MobileNet-style separable unit: 3x3 spatial conv then 1x1 pointwise.

    The true depthwise (grouped) convolution is replaced by a full 3x3
    convolution of the same width; the layer mix and tensor shapes match
    MobileNet-V2 while keeping the convolution kernel implementation
    single-path (documented substitution).
    """

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 seed: int = 0):
        super().__init__()
        self.spatial = ConvBNReLU(in_channels, in_channels, 3, stride, 1, seed=seed)
        self.pointwise = ConvBNReLU(in_channels, out_channels, 1, 1, 0,
                                    seed=seed + 1)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.pointwise(self.spatial(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.spatial.backward(self.pointwise.backward(grad_output))


class PositionalEncoding(Module):
    """Fixed sinusoidal positional encodings added to embeddings."""

    def __init__(self, max_length: int, embed_dim: int):
        super().__init__()
        position = np.arange(max_length)[:, None]
        dims = np.arange(embed_dim)[None, :]
        angle_rates = 1.0 / np.power(10000.0, (2 * (dims // 2)) / embed_dim)
        angles = position * angle_rates
        encoding = np.zeros((max_length, embed_dim))
        encoding[:, 0::2] = np.sin(angles[:, 0::2])
        encoding[:, 1::2] = np.cos(angles[:, 1::2])
        self.encoding = encoding

    def forward(self, x: np.ndarray) -> np.ndarray:
        seq_len = x.shape[1]
        if seq_len > self.encoding.shape[0]:
            raise ValueError("sequence longer than the positional table")
        return x + self.encoding[:seq_len]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output


class FeedForward(Module):
    """Transformer position-wise feed-forward block."""

    def __init__(self, embed_dim: int, hidden_dim: int, seed: int = 0):
        super().__init__()
        self.linear1 = Linear(embed_dim, hidden_dim, seed=seed)
        self.activation = GELU()
        self.linear2 = Linear(hidden_dim, embed_dim, seed=seed + 1)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.linear2(self.activation(self.linear1(x)))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.linear1.backward(
            self.activation.backward(self.linear2.backward(grad_output)))


class TransformerEncoderBlock(Module):
    """Pre-norm transformer encoder block (attention + feed-forward)."""

    def __init__(self, embed_dim: int, num_heads: int, ff_dim: int, seed: int = 0):
        super().__init__()
        self.norm1 = LayerNorm(embed_dim)
        self.attention = MultiHeadSelfAttention(embed_dim, num_heads, seed=seed)
        self.norm2 = LayerNorm(embed_dim)
        self.feed_forward = FeedForward(embed_dim, ff_dim, seed=seed + 10)

    def forward(self, x: np.ndarray) -> np.ndarray:
        attended = self.attention(self.norm1(x))
        x = x + attended
        fed = self.feed_forward(self.norm2(x))
        return x + fed

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_ff_in = self.norm2.backward(self.feed_forward.backward(grad_output))
        grad_mid = grad_output + grad_ff_in
        grad_attn_in = self.norm1.backward(self.attention.backward(grad_mid))
        return grad_mid + grad_attn_in
