"""Property tests (hypothesis) for the §III-D adaptation policies.

The two mechanisms carry the paper's "no accuracy loss" argument, so
they get invariants rather than examples:

* :class:`SignatureLengthScheduler` never leaves its configured bit
  range, only ever grows, grows exactly when the plateau trigger fires
  (events at least ``K`` observations apart), and is monotone in the
  trigger: a more sensitive scheduler (smaller ``K``, or larger
  tolerance) is never behind a less sensitive one on the same trace.

* :class:`SimilarityStoppage` only ever disables layers — once a
  (layer, phase) is off it stays off, the disabled set grows
  monotonically, and disabling requires ``T`` consecutive costly
  batches.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, strategies as st

from repro.core.adaptation import SignatureLengthScheduler, SimilarityStoppage
from repro.core.stats import LayerReuseStats

# Loss traces drawn from a small value pool produce realistic plateaus;
# the extra floats add arbitrary jitter.
losses = st.lists(
    st.one_of(st.sampled_from([0.5, 0.5 + 5e-4, 0.5 + 2e-3, 0.75, 1.0]),
              st.floats(min_value=0.0, max_value=10.0, allow_nan=False)),
    min_size=1, max_size=60)

scheduler_params = st.fixed_dictionaries({
    "initial_bits": st.integers(min_value=1, max_value=24),
    "extra_bits": st.integers(min_value=0, max_value=12),
    "plateau_iterations": st.integers(min_value=1, max_value=8),
    "tolerance": st.sampled_from([1e-4, 1e-3, 1e-2]),
})


def make_scheduler(params) -> SignatureLengthScheduler:
    return SignatureLengthScheduler(
        initial_bits=params["initial_bits"],
        max_bits=params["initial_bits"] + params["extra_bits"],
        plateau_iterations=params["plateau_iterations"],
        tolerance=params["tolerance"])


@given(losses=losses, params=scheduler_params)
def test_scheduler_stays_in_range_and_grows_monotonically(losses, params):
    scheduler = make_scheduler(params)
    low, high = params["initial_bits"], scheduler.max_bits
    previous = scheduler.bits
    for loss in losses:
        bits = scheduler.observe_loss(loss)
        assert low <= bits <= high
        assert bits >= previous
        previous = bits


@given(losses=losses, params=scheduler_params)
def test_scheduler_growth_events_spaced_by_trigger(losses, params):
    """A growth needs K consecutive flat iterations, so events are >= K
    apart and the first cannot fire before iteration K+1 (the first
    observation has no predecessor to compare against)."""
    scheduler = make_scheduler(params)
    for loss in losses:
        scheduler.observe_loss(loss)
    events = scheduler.growth_events
    k = params["plateau_iterations"]
    if events:
        assert events[0] >= k + 1
    assert all(later - earlier >= k
               for earlier, later in zip(events, events[1:]))
    assert len(events) == scheduler.bits - params["initial_bits"]


@given(losses=losses, params=scheduler_params,
       tighter=st.integers(min_value=1, max_value=8))
def test_scheduler_monotone_in_plateau_trigger(losses, params, tighter):
    """A smaller K (more eager trigger) never trails a larger K."""
    eager_params = dict(params,
                        plateau_iterations=min(params["plateau_iterations"],
                                               tighter))
    lazy = make_scheduler(params)
    eager = make_scheduler(eager_params)
    for loss in losses:
        assert eager.observe_loss(loss) >= lazy.observe_loss(loss)


@given(losses=losses, params=scheduler_params)
def test_scheduler_monotone_in_tolerance(losses, params):
    """A larger tolerance flags at least as many plateaus."""
    loose = make_scheduler(dict(params, tolerance=1e-2))
    tight = make_scheduler(dict(params, tolerance=1e-4))
    for loss in losses:
        assert loose.observe_loss(loss) >= tight.observe_loss(loss)


# ----------------------------------------------------------------------
# SimilarityStoppage
# ----------------------------------------------------------------------
def make_batch(layer: str, phase: str, *, hits: int, total: int,
               vector_length: int, num_filters: int,
               signature_bits: int) -> LayerReuseStats:
    record = LayerReuseStats(layer=layer, phase=phase)
    record.merge_call(vectors=total, hits=hits, mau=0, mnu=total - hits,
                      vector_length=vector_length, num_filters=num_filters,
                      signature_bits=signature_bits,
                      unique_signatures=total - hits, detection_on=True)
    return record


batches = st.lists(
    st.fixed_dictionaries({
        "layer": st.sampled_from(["conv1", "conv2", "fc"]),
        "phase": st.sampled_from(["forward", "backward"]),
        "total": st.integers(min_value=1, max_value=64),
        "hit_fraction": st.floats(min_value=0.0, max_value=1.0),
        "vector_length": st.integers(min_value=1, max_value=32),
        "num_filters": st.integers(min_value=1, max_value=32),
        "signature_bits": st.integers(min_value=1, max_value=40),
    }),
    min_size=1, max_size=80)


@given(batches=batches, stoppage_batches=st.integers(min_value=1, max_value=5))
def test_stoppage_only_ever_disables(batches, stoppage_batches):
    stoppage = SimilarityStoppage(stoppage_batches=stoppage_batches)
    disabled_so_far: set[str] = set()
    costly_streak: dict[str, int] = {}
    for spec in batches:
        key = stoppage.key_for(spec["layer"], spec["phase"])
        record = make_batch(spec["layer"], spec["phase"],
                            hits=int(spec["hit_fraction"] * spec["total"]),
                            total=spec["total"],
                            vector_length=spec["vector_length"],
                            num_filters=spec["num_filters"],
                            signature_bits=spec["signature_bits"])
        was_disabled = key in disabled_so_far
        enabled = stoppage.observe_batch(record)

        if was_disabled:
            # Once off, stays off — no re-enabling in any order.
            assert not enabled
            assert not stoppage.is_enabled_for(spec["layer"], spec["phase"])
            continue

        cost = stoppage.signature_cost_cycles(
            num_vectors=record.total_vectors,
            vector_length=record.vector_length,
            signature_bits=record.signature_bits)
        saved = stoppage.saved_cycles(hits=record.hits,
                                      vector_length=record.vector_length,
                                      num_filters=record.num_filters)
        streak = costly_streak.get(key, 0) + 1 if cost > saved else 0
        costly_streak[key] = streak

        # Disabling happens exactly after T consecutive costly batches.
        assert enabled == (streak < stoppage_batches)
        if not enabled:
            disabled_so_far.add(key)

        # The disabled set never shrinks.
        assert disabled_so_far <= set(stoppage.disabled_layers())
        assert set(stoppage.disabled_layers()) <= disabled_so_far | {key}


@given(batches=batches)
def test_stoppage_disabled_set_grows_monotonically(batches):
    stoppage = SimilarityStoppage(stoppage_batches=1)
    previous: set[str] = set()
    for spec in batches:
        record = make_batch(spec["layer"], spec["phase"],
                            hits=int(spec["hit_fraction"] * spec["total"]),
                            total=spec["total"],
                            vector_length=spec["vector_length"],
                            num_filters=spec["num_filters"],
                            signature_bits=spec["signature_bits"])
        stoppage.observe_batch(record)
        current = set(stoppage.disabled_layers())
        assert previous <= current
        previous = current


def test_force_disable_and_reset():
    stoppage = SimilarityStoppage()
    stoppage.force_disable("conv1", "forward")
    assert not stoppage.is_enabled_for("conv1", "forward")
    assert stoppage.is_enabled_for("conv1", "backward")
    stoppage.reset()
    assert stoppage.is_enabled_for("conv1", "forward")
