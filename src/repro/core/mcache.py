"""MCACHE — the signature-indexed result cache.

MCACHE differs from a conventional cache in two ways (§III-B3):

1. The tag (a signature) is produced *before* the data (a dot product
   result), so each line carries separate Valid-Tag (VT) and Valid-Data
   (VD) bits.
2. There is **no replacement**: when a set is full, new signatures are
   simply not inserted (the corresponding Hitmap entry becomes MNU).

For the asynchronous PE-set design each line holds multiple data
versions — one per in-flight filter (§III-C1, Figure 11).  The
synchronous design uses one version and flash-invalidates every VD bit
when the filter changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.hitmap import HitState


@dataclass
class CacheLine:
    """One MCACHE line: a tag with VT/VD bits and versioned data slots."""

    tag: int | None = None
    valid_tag: bool = False
    valid_data: list = field(default_factory=list)
    data: list = field(default_factory=list)
    entry_id: int = -1

    def reset(self) -> None:
        self.tag = None
        self.valid_tag = False
        for i in range(len(self.valid_data)):
            self.valid_data[i] = False
            self.data[i] = None


@dataclass
class MCacheStats:
    """Access counters for characterisation (Figure 15a)."""

    hits: int = 0
    mau: int = 0
    mnu: int = 0
    data_reads: int = 0
    data_writes: int = 0
    # Lines recycled by a replacement policy (persistent serving
    # sessions only; the paper's no-replacement model never evicts).
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.mau + self.mnu

    def as_fractions(self) -> dict:
        total = max(self.accesses, 1)
        return {"HIT": self.hits / total, "MAU": self.mau / total,
                "MNU": self.mnu / total}


class MCache:
    """Set-associative, no-replacement cache keyed by signatures.

    Parameters
    ----------
    entries:
        Total number of cache lines.
    ways:
        Associativity; ``entries`` must be divisible by ``ways``.
    versions:
        Data versions per line (1 for the synchronous design, one per
        concurrently-active filter for the asynchronous design).
    """

    def __init__(self, entries: int = 1024, ways: int = 16, versions: int = 1):
        if entries <= 0 or ways <= 0 or versions <= 0:
            raise ValueError("entries, ways and versions must be positive")
        if entries % ways != 0:
            raise ValueError("entries must be divisible by ways")
        self.entries = entries
        self.ways = ways
        self.versions = versions
        self.num_sets = entries // ways
        self._next_entry_id = 0
        self._sets = [[self._new_line() for _ in range(ways)]
                      for _ in range(self.num_sets)]
        # entry_id -> (set index, way index) for id-based access (§V).
        self._id_index: dict[int, tuple[int, int]] = {}
        self.stats = MCacheStats()

    def _new_line(self) -> CacheLine:
        return CacheLine(valid_data=[False] * self.versions,
                         data=[None] * self.versions)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def set_index(self, signature: int) -> int:
        """Cache set for a signature (low-order bits)."""
        return signature % self.num_sets

    def tag(self, signature: int) -> int:
        """Tag portion of a signature (remaining high-order bits)."""
        return signature // self.num_sets

    # ------------------------------------------------------------------
    # Signature phase (builds the Hitmap)
    # ------------------------------------------------------------------
    def lookup_or_insert(self, signature: int) -> tuple[HitState, int]:
        """Probe MCACHE with a signature during the signature phase.

        Returns the resulting Hitmap state together with the cache
        entry id (-1 when the signature could not be inserted, i.e.
        MNU).  Follows exactly the flow of Figure 9.
        """
        set_idx = self.set_index(signature)
        tag = self.tag(signature)
        lines = self._sets[set_idx]

        for line in lines:
            if line.valid_tag and line.tag == tag:
                self.stats.hits += 1
                return HitState.HIT, line.entry_id

        for way, line in enumerate(lines):
            if not line.valid_tag:
                line.tag = tag
                line.valid_tag = True
                line.entry_id = self._next_entry_id
                self._id_index[line.entry_id] = (set_idx, way)
                self._next_entry_id += 1
                self.stats.mau += 1
                return HitState.MAU, line.entry_id

        self.stats.mnu += 1
        return HitState.MNU, -1

    def probe(self, signature: int) -> tuple[bool, int]:
        """Non-mutating lookup; returns (present, entry_id)."""
        set_idx = self.set_index(signature)
        tag = self.tag(signature)
        for line in self._sets[set_idx]:
            if line.valid_tag and line.tag == tag:
                return True, line.entry_id
        return False, -1

    # ------------------------------------------------------------------
    # Data phase (results computed / reused during dot products)
    # ------------------------------------------------------------------
    def _line_by_id(self, entry_id: int) -> CacheLine:
        if entry_id not in self._id_index:
            raise KeyError(f"unknown MCACHE entry id {entry_id}")
        set_idx, way = self._id_index[entry_id]
        return self._sets[set_idx][way]

    def write_data(self, entry_id: int, value, version: int = 0) -> None:
        """Store a computed result in a line's data slot and set its VD bit."""
        if not 0 <= version < self.versions:
            raise IndexError(f"version {version} out of range")
        line = self._line_by_id(entry_id)
        line.data[version] = value
        line.valid_data[version] = True
        self.stats.data_writes += 1

    def read_data(self, entry_id: int, version: int = 0):
        """Fetch a previously stored result; raises if VD is unset."""
        if not 0 <= version < self.versions:
            raise IndexError(f"version {version} out of range")
        line = self._line_by_id(entry_id)
        if not line.valid_data[version]:
            raise LookupError(
                f"entry {entry_id} version {version} has no valid data")
        self.stats.data_reads += 1
        return line.data[version]

    def has_data(self, entry_id: int, version: int = 0) -> bool:
        line = self._line_by_id(entry_id)
        return line.valid_data[version]

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate_data(self, version: int | None = None) -> None:
        """Clear VD bits (tags stay valid).

        The synchronous design does this whenever a new filter is
        loaded — results belong to the previous filter, but signatures
        (tags) describe the unchanged input vectors.
        """
        for lines in self._sets:
            for line in lines:
                if version is None:
                    for i in range(self.versions):
                        line.valid_data[i] = False
                        line.data[i] = None
                else:
                    line.valid_data[version] = False
                    line.data[version] = None

    def clear(self) -> None:
        """Full reset (new channel / new set of input vectors)."""
        for lines in self._sets:
            for line in lines:
                line.reset()
        self._id_index.clear()
        self._next_entry_id = 0

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of lines with a valid tag."""
        return sum(1 for lines in self._sets for line in lines if line.valid_tag)

    def utilization(self) -> float:
        return self.occupancy() / self.entries

    def __repr__(self) -> str:  # pragma: no cover
        return (f"MCache(entries={self.entries}, ways={self.ways}, "
                f"versions={self.versions}, occupancy={self.occupancy()})")
