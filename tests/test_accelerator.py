"""Tests for the accelerator timing models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator import (BaselineAccelerator, CycleCostModel, FPGAModel,
                               InputStationary, MercurySimulator, PEConfig,
                               ProcessingElement, RowStationary,
                               SignaturePipelineModel, WeightStationary,
                               make_dataflow, pipelined_signature_cycles,
                               unpipelined_signature_cycles)
from repro.accelerator.dataflow import available_dataflows
from repro.accelerator.mercury_sim import replace_detection_off
from repro.accelerator.workloads import (ARCHITECTURES, build_workload,
                                         workload_to_stats)
from repro.core.config import MercuryConfig
from repro.core.stats import LayerReuseStats, ReuseStats


# ----------------------------------------------------------------------
# Signature pipeline (Figure 8)
# ----------------------------------------------------------------------
def test_unpipelined_cycles_match_paper_example():
    # 3x3 vectors: 2x = 6 cycles per signature bit, no overlap.
    assert unpipelined_signature_cycles(1, 1, 3) == 6
    assert unpipelined_signature_cycles(3, 1, 3) == 18


def test_pipelined_cycles_match_paper_example():
    # First bit takes 2x+1 = 7 cycles; each further bit takes x = 3.
    assert pipelined_signature_cycles(1, 1, 3) == 7
    assert pipelined_signature_cycles(2, 1, 3) == 10
    assert pipelined_signature_cycles(3, 1, 3) == 13


def test_pipelining_speedup_approaches_two():
    model = SignaturePipelineModel(vector_rows=3)
    assert model.speedup_from_pipelining(1, 1) < 1.0  # warm-up dominates
    assert model.speedup_from_pipelining(1000, 20) == pytest.approx(2.0, abs=0.01)
    assert model.steady_state_cycles_per_bit() == (6, 3)


def test_signature_cycle_validation():
    with pytest.raises(ValueError):
        pipelined_signature_cycles(1, 1, 0)
    with pytest.raises(ValueError):
        unpipelined_signature_cycles(-1, 1, 3)
    assert pipelined_signature_cycles(0, 5, 3) == 0


@settings(deadline=None, max_examples=30)
@given(signatures=st.integers(1, 500), bits=st.integers(1, 40),
       rows=st.integers(1, 6))
def test_pipelined_never_slower(signatures, bits, rows):
    assert pipelined_signature_cycles(signatures, bits, rows) <= \
        unpipelined_signature_cycles(signatures, bits, rows) + (2 * rows + 1)


# ----------------------------------------------------------------------
# Processing element
# ----------------------------------------------------------------------
def test_pe_mac_pipeline_timing():
    pe = ProcessingElement()
    assert pe.multiply_accumulate(1) == 1
    pe.reset()
    assert pe.multiply_accumulate(4) == 4  # fully pipelined


def test_pe_row_dot_product_org_saves_a_cycle():
    pe_plain = ProcessingElement()
    pe_org = ProcessingElement()
    plain = pe_plain.row_dot_product(3, use_org=False)
    fast = pe_org.row_dot_product(3, use_org=True)
    assert plain - fast == 1


def test_pe_async_buffer_handshake():
    pe = ProcessingElement(PEConfig(input_buffers=2))
    first = pe.load_input("rows-A")
    second = pe.load_input("rows-B")
    assert {first, second} == {0, 1}
    with pytest.raises(RuntimeError):
        pe.load_input("rows-C")
    pe.switch_input()
    assert pe.in_use == 1
    # After switching, buffer 0 is free again.
    pe.load_input("rows-C")


def test_pe_config_validation():
    with pytest.raises(ValueError):
        PEConfig(multiply_latency=0)
    with pytest.raises(ValueError):
        PEConfig(input_buffers=3)


# ----------------------------------------------------------------------
# Dataflows
# ----------------------------------------------------------------------
def test_dataflow_factory_and_names():
    assert set(available_dataflows()) == {"row_stationary", "weight_stationary",
                                          "input_stationary"}
    assert isinstance(make_dataflow("row_stationary"), RowStationary)
    with pytest.raises(ValueError):
        make_dataflow("spiral")


def test_dataflow_reuse_efficiency_ordering():
    assert RowStationary().reuse_efficiency > WeightStationary().reuse_efficiency
    assert WeightStationary().reuse_efficiency > InputStationary().reuse_efficiency


def test_dataflow_validation():
    with pytest.raises(ValueError):
        WeightStationary(reuse_efficiency=1.5)


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
def _make_record(hits=50, vectors=100, vector_length=9, filters=64, bits=20,
                 detection_on=True):
    record = LayerReuseStats(layer="conv", phase="forward")
    record.merge_call(vectors=vectors, hits=hits, mau=vectors - hits, mnu=0,
                      vector_length=vector_length, num_filters=filters,
                      signature_bits=bits, unique_signatures=vectors - hits,
                      detection_on=detection_on)
    return record


def test_baseline_cycles_scale_with_work():
    model = CycleCostModel(num_pes=168)
    small = model.baseline_cycles(_make_record(filters=32))
    large = model.baseline_cycles(_make_record(filters=64))
    assert large == pytest.approx(2 * small)


def test_mercury_cycles_below_baseline_when_hits_help():
    model = CycleCostModel(num_pes=168)
    record = _make_record(hits=5000, vectors=10000, filters=256)
    layer = model.layer_cycles(record)
    assert layer.mercury_cycles < layer.baseline_cycles
    assert layer.speedup > 1.4
    assert layer.signature_cycles > 0


def test_detection_off_costs_baseline_without_signatures():
    model = CycleCostModel()
    record = _make_record(detection_on=False, hits=0)
    layer = model.layer_cycles(record)
    assert layer.signature_cycles == 0
    assert layer.compute_cycles == layer.baseline_cycles


def test_synchronous_design_pays_imbalance_penalty():
    record = _make_record(hits=5000, vectors=10000, filters=128)
    sync = CycleCostModel(asynchronous=False).compute_cycles(record)
    async_ = CycleCostModel(asynchronous=True).compute_cycles(record)
    assert sync > async_


def test_reloaded_signatures_are_free():
    model = CycleCostModel()
    record = _make_record()
    reloaded = LayerReuseStats(layer="conv", phase="backward")
    reloaded.merge_call(vectors=100, hits=50, mau=50, mnu=0, vector_length=9,
                        num_filters=64, signature_bits=20,
                        unique_signatures=50, detection_on=True,
                        signatures_reloaded=True)
    assert model.signature_cycles(record) > 0
    assert model.signature_cycles(reloaded) == 0


def test_empty_record_costs_nothing():
    model = CycleCostModel()
    record = LayerReuseStats(layer="conv", phase="forward")
    assert model.baseline_cycles(record) == 0
    assert model.compute_cycles(record) == 0


def test_cost_model_validation():
    with pytest.raises(ValueError):
        CycleCostModel(num_pes=0)


# ----------------------------------------------------------------------
# Baseline accelerator and simulator
# ----------------------------------------------------------------------
def _small_stats():
    stats = ReuseStats()
    record = stats.record_for("conv", "forward")
    record.merge_call(vectors=1000, hits=600, mau=400, mnu=0, vector_length=9,
                      num_filters=128, signature_bits=20,
                      unique_signatures=400, detection_on=True)
    return stats


def test_baseline_accelerator_reports():
    stats = _small_stats()
    baseline = BaselineAccelerator()
    reports = baseline.layer_reports(stats)
    assert len(reports) == 1
    assert baseline.total_cycles(stats) > 0
    assert baseline.total_macs(stats) == 1000 * 9 * 128


def test_simulator_speedup_and_breakdown():
    simulator = MercurySimulator(MercuryConfig())
    report = simulator.simulate(_small_stats(), "toy")
    assert report.speedup > 1.0
    breakdown = report.cycle_breakdown()
    assert breakdown["mercury"]["signature"] > 0
    assert breakdown["baseline"]["signature"] == 0
    assert report.signature_fraction < 0.5
    assert report.per_layer_speedups()["conv"] == pytest.approx(report.speedup)


def test_simulator_layers_on_off():
    stats = _small_stats()
    off_record = stats.record_for("small", "forward")
    off_record.merge_call(vectors=10, hits=0, mau=0, mnu=10, vector_length=9,
                          num_filters=2, signature_bits=20,
                          unique_signatures=10, detection_on=False)
    report = MercurySimulator().simulate(stats, "toy")
    counts = report.layers_on_off()
    assert counts == {"on": 1, "off": 1}


def test_replace_detection_off_helper():
    record = _make_record()
    off = replace_detection_off(record)
    assert not off.similarity_detection_on
    assert off.hits == 0
    assert off.total_vectors == record.total_vectors
    assert record.similarity_detection_on  # original untouched


def test_analytic_stoppage_disables_tiny_layers():
    stats = ReuseStats()
    record = stats.record_for("tiny", "forward")
    record.merge_call(vectors=100, hits=10, mau=90, mnu=0, vector_length=9,
                      num_filters=2, signature_bits=20, unique_signatures=90,
                      detection_on=True)
    report = MercurySimulator().simulate(stats, "toy",
                                         apply_analytic_stoppage=True)
    assert report.layers_on_off()["off"] == 1


# ----------------------------------------------------------------------
# Paper-scale workloads
# ----------------------------------------------------------------------
def test_workloads_exist_for_all_twelve_models():
    assert len(ARCHITECTURES) == 12


def test_build_workload_layer_counts():
    assert len(build_workload("vgg13")) == 10
    assert len(build_workload("vgg16")) == 13
    assert len(build_workload("vgg19")) == 16
    assert len(build_workload("resnet152")) > len(build_workload("resnet50"))


def test_build_workload_unknown_model():
    with pytest.raises(ValueError):
        build_workload("lenet")


def test_workload_hit_profile_monotonic():
    workload = build_workload("vgg13")
    assert workload[0].hit_rate_forward > workload[-1].hit_rate_forward


def test_workload_to_stats_speedup_in_paper_band():
    stats = workload_to_stats(build_workload("vgg13"))
    speedup = MercurySimulator(MercuryConfig()).speedup(
        stats, "vgg13", apply_analytic_stoppage=True)
    assert 1.5 < speedup < 2.5


def test_workload_signature_fraction_is_small_at_paper_scale():
    stats = workload_to_stats(build_workload("resnet50"))
    report = MercurySimulator(MercuryConfig()).simulate(
        stats, "resnet50", apply_analytic_stoppage=True)
    assert report.signature_fraction < 0.15


# ----------------------------------------------------------------------
# FPGA model (Tables II-IV)
# ----------------------------------------------------------------------
def test_fpga_baseline_values_match_table4():
    fpga = FPGAModel()
    baseline = fpga.baseline_resources()
    assert baseline.slice_luts == 56910
    assert baseline.slice_registers == 48735
    assert fpga.baseline_power().total == pytest.approx(1.703)


def test_fpga_mercury_default_config_matches_table4():
    fpga = FPGAModel()
    mercury = fpga.mercury_resources(64, 16)
    assert mercury.slice_luts == 216918
    assert mercury.slice_registers == 81332
    assert fpga.mercury_power(64, 16).total == pytest.approx(1.929)


def test_fpga_power_overhead_close_to_paper():
    fpga = FPGAModel()
    assert fpga.power_overhead(64, 16) == pytest.approx(1.13, abs=0.02)


def test_fpga_table2_scaling_trend():
    rows = FPGAModel().table2_rows()
    registers = [row["slice_registers"] for row in rows]
    totals = [row["total"] for row in rows]
    assert registers == sorted(registers)
    assert totals == sorted(totals)
    # Quadrupling the sets costs only ~6.5% power.
    assert totals[-1] / totals[0] < 1.08


def test_fpga_table3_scaling_trend():
    rows = FPGAModel().table3_rows()
    assert [row["ways"] for row in rows] == [2, 4, 8, 16]
    registers = [row["slice_registers"] for row in rows]
    assert registers == sorted(registers)
    assert rows[-1]["total"] / rows[0]["total"] < 1.05


def test_fpga_interpolates_unseen_configuration():
    fpga = FPGAModel()
    predicted = fpga.mercury_resources(40, 16)
    assert fpga.mercury_resources(32, 16).slice_registers < \
        predicted.slice_registers < fpga.mercury_resources(48, 16).slice_registers


def test_fpga_validation():
    with pytest.raises(ValueError):
        FPGAModel().mercury_resources(0, 16)


def test_fpga_dsp_count_constant():
    fpga = FPGAModel()
    for rows in (fpga.table2_rows(), fpga.table3_rows(), fpga.table4_rows()):
        assert all(row["dsp48"] == 198 for row in rows)
