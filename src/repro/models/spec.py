"""Model metadata shared by the registry and the benchmarks."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelSpec:
    """Describes one model zoo entry.

    ``relative_size`` orders the models roughly as the originals are
    ordered by compute (bigger networks expose more reuse opportunity in
    the paper's evaluation), and is used by workload-level benches that
    do not need to instantiate the network.
    """

    name: str
    kind: str                      # "cnn" or "transformer"
    input_shape: tuple             # (C, H, W) for CNNs, (seq_len,) for text
    num_classes: int
    relative_size: float
    description: str = ""

    def __post_init__(self):
        if self.kind not in ("cnn", "transformer"):
            raise ValueError(f"unknown model kind {self.kind!r}")
        if self.relative_size <= 0:
            raise ValueError("relative_size must be positive")
