"""Optimizers."""

from __future__ import annotations

import numpy as np


class Optimizer:
    """Base class holding a parameter list."""

    def __init__(self, parameters):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            if self.momentum:
                v *= self.momentum
                v += grad
                update = v
            else:
                update = grad
            p.value -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer."""

    def __init__(self, parameters, lr: float = 0.001, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
