"""Smoke tests for the hot-path perf suite.

The timing magnitudes themselves are CI-noise territory — the dedicated
perf-smoke job gates them via ``perf_suite.py --quick --check`` — so
these tests pin the artifact contract instead: every segment reports
before/after wall clocks, the seed replays are faithful, and the floor
checker actually fails when a floor is not met.
"""

from __future__ import annotations

import numpy as np

import repro.core.rpq as rpq_module
import repro.nn.layers.conv as conv_module
from benchmarks.perf_suite import (SCHEMA, check_floors, seed_mode,
                                   seed_pack_bits, segment_im2col)
from repro.core.rpq import pack_bits, signatures_to_ints
from repro.nn.im2col import im2col_reference


def test_seed_pack_bits_matches_current_values():
    rng = np.random.default_rng(0)
    narrow = rng.integers(0, 2, size=(20, 20))
    np.testing.assert_array_equal(seed_pack_bits(narrow), pack_bits(narrow))
    wide = rng.integers(0, 2, size=(8, 70))
    seed_values = seed_pack_bits(wide)
    assert seed_values.dtype == object
    np.testing.assert_array_equal(seed_values,
                                  signatures_to_ints(pack_bits(wide)))


def test_seed_mode_swaps_and_restores_implementations():
    original_im2col = conv_module.im2col
    original_pack = rpq_module.pack_bits
    with seed_mode():
        assert conv_module.im2col is im2col_reference
        assert rpq_module.pack_bits is seed_pack_bits
    assert conv_module.im2col is original_im2col
    assert rpq_module.pack_bits is original_pack


def test_segment_payload_shape():
    segment = segment_im2col(quick=True, repeats=1)
    assert segment["before_s"] > 0.0
    assert segment["after_s"] > 0.0
    assert segment["speedup"] == segment["before_s"] / segment["after_s"]


def floors_payload(speedups, parallel_speedup=2.0, usable_cpus=8,
                   workers=4):
    """A minimal payload satisfying ``check_floors``'s contract."""
    return {"speedups": dict(speedups),
            "segments": {"serving_parallel": {
                "speedup": parallel_speedup,
                "usable_cpus": usable_cpus,
                "workers": workers}}}


def test_check_floors_flags_misses():
    payload = floors_payload({"im2col": 2.0, "baseline_memoization": 1.2,
                              "serving_sharded": 2.0,
                              "serving_tiered": 1.2,
                              "serving_telemetry": 1.0,
                              "train_step": 1.5, "cache_ride": 1.4,
                              "functional_sweep": 3.0})
    failures = check_floors(payload, floor=1.5)
    assert len(failures) == 1 and "baseline_memoization" in failures[0]
    assert check_floors(payload, floor=1.1) == []


def test_check_floors_gates_sharded_serving():
    payload = floors_payload({"im2col": 2.0, "baseline_memoization": 2.0,
                              "serving_sharded": 1.1,
                              "serving_tiered": 1.2,
                              "serving_telemetry": 1.0,
                              "train_step": 1.5, "cache_ride": 1.4})
    failures = check_floors(payload, floor=1.5, sharded_floor=1.2)
    assert len(failures) == 1 and "serving_sharded" in failures[0]
    assert check_floors(payload, floor=1.5, sharded_floor=1.05) == []


def test_check_floors_fails_on_missing_gated_segment():
    # A gated segment disappearing from the payload must not silently
    # disable the gate.
    payload = floors_payload({"im2col": 2.0, "serving_sharded": 2.0,
                              "serving_tiered": 1.2,
                              "serving_telemetry": 1.0,
                              "train_step": 1.5, "cache_ride": 1.4})
    failures = check_floors(payload, floor=1.5)
    assert len(failures) == 1 and "baseline_memoization" in failures[0]
    assert "missing" in failures[0]


GOOD = {"im2col": 2.0, "baseline_memoization": 2.0,
        "serving_sharded": 2.0, "serving_tiered": 1.2,
        "serving_telemetry": 1.0, "train_step": 1.5, "cache_ride": 1.4}


def test_check_floors_gates_train_step():
    # The training step is gated against the full seed replay; a
    # regression below the floor must fail even when every other
    # segment holds.
    payload = floors_payload(dict(GOOD, train_step=1.1))
    failures = check_floors(payload, floor=1.5)
    assert len(failures) == 1 and "train_step" in failures[0]
    assert check_floors(payload, floor=1.5, train_step_floor=1.05) == []


def test_check_floors_gates_cache_ride():
    # The fused gather->GEMM->scatter ride must beat the per-group
    # masked assembly; its floor is independent of the global one.
    payload = floors_payload(dict(GOOD, cache_ride=1.02))
    failures = check_floors(payload, floor=1.5)
    assert len(failures) == 1 and "cache_ride" in failures[0]
    assert check_floors(payload, floor=1.5, cache_ride_floor=1.0) == []


def test_check_floors_gates_tiered_serving():
    payload = floors_payload(dict(GOOD, serving_tiered=1.02))
    failures = check_floors(payload, floor=1.5, tiered_floor=1.05)
    assert len(failures) == 1 and "serving_tiered" in failures[0]
    assert check_floors(payload, floor=1.5, tiered_floor=1.0) == []


def test_check_floors_gates_telemetry_overhead():
    # The telemetry segment is an overhead ceiling, not a speedup floor:
    # the instrumented replay must stay within ~5% of the bare one.
    payload = floors_payload(dict(GOOD, serving_telemetry=0.90))
    failures = check_floors(payload, floor=1.5)
    assert len(failures) == 1 and "serving_telemetry" in failures[0]
    assert check_floors(payload, floor=1.5, telemetry_floor=0.85) == []


def test_check_floors_gates_parallel_serving_on_multicore():
    # 8 usable cores, 4 workers: the full parallel floor applies.
    payload = floors_payload(GOOD, parallel_speedup=1.1, usable_cpus=8)
    failures = check_floors(payload, floor=1.5)
    assert len(failures) == 1 and "serving_parallel" in failures[0]
    assert check_floors(
        floors_payload(GOOD, parallel_speedup=1.8, usable_cpus=8),
        floor=1.5) == []


def test_check_floors_scales_parallel_floor_to_core_count():
    # 2 cores cap the honest expectation at 0.6 * 2 = 1.2x, below the
    # nominal 1.5x floor.
    assert check_floors(
        floors_payload(GOOD, parallel_speedup=1.3, usable_cpus=2),
        floor=1.5) == []
    failures = check_floors(
        floors_payload(GOOD, parallel_speedup=1.1, usable_cpus=2),
        floor=1.5)
    assert len(failures) == 1 and "serving_parallel" in failures[0]


def test_check_floors_skips_parallel_gate_on_single_core():
    # One core cannot express process parallelism; the measurement is
    # recorded but never gated.
    assert check_floors(
        floors_payload(GOOD, parallel_speedup=0.5, usable_cpus=1),
        floor=1.5) == []


def test_check_floors_fails_on_missing_parallel_segment():
    payload = floors_payload(GOOD)
    del payload["segments"]["serving_parallel"]
    failures = check_floors(payload, floor=1.5)
    assert len(failures) == 1 and "serving_parallel" in failures[0]
    assert "missing" in failures[0]


def test_run_suite_artifact_contract():
    """One fastest-possible full pass: schema, segments and speedups."""
    from benchmarks.perf_suite import run_suite
    payload = run_suite(quick=True, repeats=1)
    assert payload["schema"] == SCHEMA
    expected = {"im2col", "rpq_projection_growth", "hitmap_multiword",
                "train_step", "conv_group_batching", "cache_ride",
                "serving_reuse",
                "serving_sharded", "serving_tiered", "serving_parallel",
                "serving_telemetry", "baseline_memoization",
                "functional_sweep"}
    assert set(payload["segments"]) == expected
    assert set(payload["speedups"]) == expected
    for segment in payload["segments"].values():
        assert segment["before_s"] > 0.0 and segment["after_s"] > 0.0
        assert segment["speedup"] > 0.0
    # The artifact is JSON-safe.
    import json
    json.dumps(payload)
