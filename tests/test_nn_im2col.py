"""Tests for im2col / col2im."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.im2col import (col2im, conv_output_size, im2col,
                             im2col_reference, im2col_view, sliding_windows)


def test_conv_output_size_basic():
    assert conv_output_size(5, 3, 1, 0) == 3
    assert conv_output_size(5, 3, 1, 1) == 5
    assert conv_output_size(7, 3, 2, 0) == 3
    assert conv_output_size(224, 7, 2, 3) == 112


def test_im2col_shape():
    x = np.arange(2 * 3 * 5 * 5, dtype=float).reshape(2, 3, 5, 5)
    cols = im2col(x, 3, 3)
    assert cols.shape == (2 * 3 * 3, 3 * 3 * 3)


def test_im2col_values_single_patch():
    x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
    cols = im2col(x, 3, 3)
    # First patch is the top-left 3x3 block.
    np.testing.assert_array_equal(cols[0],
                                  x[0, 0, :3, :3].reshape(-1))
    # Last patch is the bottom-right 3x3 block.
    np.testing.assert_array_equal(cols[-1],
                                  x[0, 0, 1:, 1:].reshape(-1))


def test_im2col_matches_direct_convolution():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(2, 2, 6, 6))
    w = rng.normal(size=(4, 2, 3, 3))
    cols = im2col(x, 3, 3)
    out = (cols @ w.reshape(4, -1).T).reshape(2, 4, 4, 4)
    # Direct convolution for one sample/filter/position.
    direct = np.sum(x[1, :, 2:5, 1:4] * w[3])
    assert np.isclose(out[1, 2, 1, 3], direct)


def test_im2col_with_padding_and_stride():
    x = np.ones((1, 1, 4, 4))
    cols = im2col(x, 3, 3, stride=2, pad=1)
    out_size = conv_output_size(4, 3, 2, 1)
    assert cols.shape == (out_size * out_size, 9)
    # Corner patch includes padding zeros.
    assert cols[0].sum() == 4.0


def test_col2im_inverts_im2col_for_non_overlapping():
    x = np.arange(1 * 1 * 4 * 4, dtype=float).reshape(1, 1, 4, 4)
    cols = im2col(x, 2, 2, stride=2)
    restored = col2im(cols, x.shape, 2, 2, stride=2)
    np.testing.assert_allclose(restored, x)


def test_col2im_accumulates_overlaps():
    x = np.ones((1, 1, 3, 3))
    cols = im2col(x, 2, 2, stride=1)
    restored = col2im(cols, x.shape, 2, 2, stride=1)
    # The centre pixel participates in all four 2x2 patches.
    assert restored[0, 0, 1, 1] == 4.0
    assert restored[0, 0, 0, 0] == 1.0


@settings(deadline=None, max_examples=20)
@given(batch=st.integers(1, 3), channels=st.integers(1, 3),
       size=st.integers(4, 8), kernel=st.integers(1, 3))
def test_im2col_shape_property(batch, channels, size, kernel):
    x = np.random.default_rng(1).normal(size=(batch, channels, size, size))
    cols = im2col(x, kernel, kernel)
    out = size - kernel + 1
    assert cols.shape == (batch * out * out, channels * kernel * kernel)


def test_sliding_windows_is_a_zero_copy_view():
    x = np.arange(2 * 3 * 5 * 5, dtype=float).reshape(2, 3, 5, 5)
    windows = sliding_windows(x, 3, 3, stride=2)
    assert windows.shape == (2, 3, 3, 3, 2, 2)
    assert windows.base is not None          # a view, not a copy
    assert np.shares_memory(windows, x)
    assert not windows.flags.writeable
    np.testing.assert_array_equal(windows[1, 2, :, :, 1, 0],
                                  x[1, 2, 2:5, 0:3])


def test_im2col_view_defers_the_copy():
    x = np.random.default_rng(3).normal(size=(2, 2, 6, 6))
    view = im2col_view(x, 3, 3)
    assert np.shares_memory(view, x)
    np.testing.assert_array_equal(view.reshape(2 * 4 * 4, 2 * 9),
                                  im2col(x, 3, 3))


@settings(deadline=None, max_examples=30)
@given(batch=st.integers(1, 3), channels=st.integers(1, 3),
       size=st.integers(4, 9), kernel=st.integers(1, 3),
       stride=st.integers(1, 3), pad=st.integers(0, 2))
def test_im2col_matches_reference_bitwise(batch, channels, size, kernel,
                                          stride, pad):
    """The strided rewrite gathers exactly the loop oracle's values."""
    x = np.random.default_rng(size * 7 + kernel).normal(
        size=(batch, channels, size, size))
    fast = im2col(x, kernel, kernel, stride=stride, pad=pad)
    reference = im2col_reference(x, kernel, kernel, stride=stride, pad=pad)
    assert fast.dtype == reference.dtype
    np.testing.assert_array_equal(fast, reference)


@settings(deadline=None, max_examples=20)
@given(size=st.integers(4, 8), kernel=st.integers(2, 3))
def test_col2im_total_mass_preserved(size, kernel):
    rng = np.random.default_rng(2)
    cols = rng.normal(size=((size - kernel + 1) ** 2, kernel * kernel))
    restored = col2im(cols, (1, 1, size, size), kernel, kernel)
    assert np.isclose(restored.sum(), cols.sum())
