"""Deterministic traffic generation for serving experiments.

A trace is a list of :class:`Request` records — arrival time plus an
index into a fixed *request pool* (the distinct payloads production
traffic would draw from).  Every random draw comes from streams derived
with :class:`numpy.random.SeedSequence`, so a (pattern, seed) pair
fully determines the trace: the golden serving suite replays one and
pins its hit statistics.

Three patterns span the scenario-diversity axis of the serving sweep:

* ``uniform`` — Poisson arrivals, uniform popularity: repeats only by
  the birthday effect of a finite pool;
* ``bursty`` — on/off modulated arrivals (burst factor × base rate
  inside bursts, idle gaps between): stresses the micro-batcher and
  queue depth;
* ``zipfian`` — Poisson arrivals, Zipf-distributed popularity (the
  hot-key regime of production serving): a few payloads dominate, so
  cross-request reuse is high.  The Zipf draw is a cumulative-weight
  inversion, not :meth:`numpy.random.Generator.zipf`, so traces stay
  stable across numpy versions.  ``zipf_rotate_every`` adds hot-set
  churn — the rank→payload mapping rotates every N requests — which is
  the regime where cache *replacement* policies earn their keep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic_images import ClusteredImageDataset, \
    ImageDatasetConfig
from repro.data.synthetic_text import TranslationConfig, TranslationDataset
from repro.models.registry import get_spec

TRAFFIC_PATTERNS = ("uniform", "bursty", "zipfian")

# Sub-stream ids under the trace seed, one per randomness consumer.
_ARRIVAL_STREAM, _POPULARITY_STREAM, _POOL_STREAM = 0, 1, 2


@dataclass(frozen=True)
class TrafficConfig:
    """One traffic scenario."""

    pattern: str = "zipfian"
    num_requests: int = 200
    rate_rps: float = 2000.0
    # Zipf popularity exponent (zipfian pattern).
    zipf_exponent: float = 1.1
    # Zipfian hot-set churn: every this many requests the rank→payload
    # mapping rotates by ``pool_size // 3`` positions, so the hot head
    # moves through the pool (production hot keys change over a day;
    # a no-replacement cache stuck with epoch-0's head pays for every
    # later epoch).  0 = stationary popularity (the default).
    zipf_rotate_every: int = 0
    # Bursty pattern: arrival rate multiplier inside bursts and the
    # number of requests per burst/idle phase.
    burst_factor: float = 8.0
    burst_length: int = 16
    seed: int = 0

    def __post_init__(self):
        if self.pattern not in TRAFFIC_PATTERNS:
            raise ValueError(f"unknown pattern {self.pattern!r}; "
                             f"choose from {TRAFFIC_PATTERNS}")
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if self.burst_length <= 0:
            raise ValueError("burst_length must be positive")
        if self.zipf_rotate_every < 0:
            raise ValueError("zipf_rotate_every must be >= 0")


@dataclass(frozen=True)
class Request:
    """One trace entry: when it arrives and which pool payload it is."""

    index: int
    arrival_s: float
    pool_index: int


def _stream(seed: int, stream: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence([seed, stream]))


def build_request_pool(model: str = "squeezenet", pool_size: int = 32,
                       image_size: int = 12, seed: int = 0) -> np.ndarray:
    """The distinct payloads a scenario draws from.

    CNN models get clustered synthetic images (repeats *within* the
    pool's patch space add vector-level similarity on top of the
    request-level repeats); the transformer gets token sequences.
    Deterministic in ``(model kind, pool_size, image_size, seed)``.
    """
    if pool_size <= 0:
        raise ValueError("pool_size must be positive")
    pool_seed = int(_stream(seed, _POOL_STREAM).integers(0, 2 ** 31))
    if get_spec(model).kind == "cnn":
        classes = max(2, min(pool_size, 4))
        per_class = -(-pool_size // classes)
        dataset = ClusteredImageDataset(ImageDatasetConfig(
            num_classes=classes, samples_per_class=per_class,
            image_size=image_size, seed=pool_seed))
        return dataset.images[:pool_size]
    config = TranslationConfig(num_samples=pool_size, seed=pool_seed)
    return TranslationDataset(config).sources[:pool_size]


def _zipf_weights(pool_size: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, pool_size + 1, dtype=np.float64)
    weights = ranks ** -exponent
    return weights / weights.sum()


def _pool_indices(config: TrafficConfig, pool_size: int) -> np.ndarray:
    rng = _stream(config.seed, _POPULARITY_STREAM)
    if config.pattern == "zipfian":
        # Inverse-CDF draw over explicit weights: version-stable and
        # bounded by the pool (np.random's zipf is unbounded).
        cdf = np.cumsum(_zipf_weights(pool_size, config.zipf_exponent))
        draws = rng.random(config.num_requests)
        ranks = np.searchsorted(cdf, draws, side="right").clip(0,
                                                               pool_size - 1)
        if config.zipf_rotate_every:
            # Hot-set churn: the rank→payload mapping rotates once per
            # epoch, so rank 0 names a different pool payload in each —
            # the skew shape is unchanged, only *which* keys are hot.
            epochs = np.arange(config.num_requests) \
                // config.zipf_rotate_every
            step = max(1, pool_size // 3)
            ranks = (ranks + epochs * step) % pool_size
        return ranks
    return rng.integers(0, pool_size, size=config.num_requests)


def _arrival_times(config: TrafficConfig) -> np.ndarray:
    rng = _stream(config.seed, _ARRIVAL_STREAM)
    mean_gap = 1.0 / config.rate_rps
    gaps = rng.exponential(mean_gap, size=config.num_requests)
    if config.pattern == "bursty":
        # Alternate burst (compressed gaps) and idle (stretched gaps)
        # phases of ``burst_length`` requests each.  The idle stretch is
        # ``2 - 1/f`` so the expected gap stays ``mean_gap`` — the
        # offered load matches ``rate_rps`` — while the instantaneous
        # rate swings by a factor of ``f * (2 - 1/f) ≈ 2f`` between
        # phases.
        phase = (np.arange(config.num_requests)
                 // config.burst_length) % 2 == 0
        idle_stretch = 2.0 - 1.0 / config.burst_factor
        gaps = np.where(phase, gaps / config.burst_factor,
                        gaps * idle_stretch)
    return np.cumsum(gaps)


def generate_trace(config: TrafficConfig, pool_size: int) -> list[Request]:
    """The full request trace of one scenario, in arrival order."""
    indices = _pool_indices(config, pool_size)
    arrivals = _arrival_times(config)
    return [Request(index=i, arrival_s=float(arrivals[i]),
                    pool_index=int(indices[i]))
            for i in range(config.num_requests)]


def trace_summary(trace: list[Request]) -> dict:
    """Shape statistics of a trace (distinct payloads, top-key share)."""
    indices = np.array([request.pool_index for request in trace])
    counts = np.bincount(indices)
    counts = counts[counts > 0]
    return {
        "requests": len(trace),
        "distinct_payloads": int(len(counts)),
        "top_key_share": float(counts.max() / len(trace)) if len(trace)
        else 0.0,
        "duration_s": float(trace[-1].arrival_s) if trace else 0.0,
    }
