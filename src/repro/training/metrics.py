"""Evaluation metrics: top-1 accuracy and BLEU.

Telemetry naming: per-epoch reuse/loss/accuracy metrics emitted by
:class:`~repro.training.trainer.Trainer` share one canonical
vocabulary with the serving stack — :data:`METRIC_NAMES` (re-exported
from :mod:`repro.obs.metrics`) names every series, and training and
serving reuse counters differ only by their ``phase`` label.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.obs.metrics import METRIC_NAMES

__all__ = ["METRIC_NAMES", "bleu_score", "top1_accuracy"]


def top1_accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of samples whose arg-max prediction matches the label.

    Works for both classification (``logits`` of shape (batch, classes))
    and per-position prediction (``(batch, seq, classes)``).
    """
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    predictions = np.argmax(logits, axis=-1)
    if predictions.shape != labels.shape:
        raise ValueError("logits and labels shapes are incompatible")
    return float(np.mean(predictions == labels))


def _ngram_counts(tokens, order: int) -> Counter:
    return Counter(tuple(tokens[i:i + order])
                   for i in range(len(tokens) - order + 1))


def bleu_score(references, hypotheses, max_order: int = 4) -> float:
    """Corpus BLEU with uniform n-gram weights and brevity penalty.

    ``references`` and ``hypotheses`` are sequences of token sequences
    (one reference per hypothesis, as in the paper's Multi30k setup).
    Returns the score on the conventional 0-100 scale.
    """
    references = [list(map(int, ref)) for ref in references]
    hypotheses = [list(map(int, hyp)) for hyp in hypotheses]
    if len(references) != len(hypotheses):
        raise ValueError("references and hypotheses must align one-to-one")
    if not references:
        raise ValueError("bleu_score needs at least one sentence pair")

    matches = [0] * max_order
    possible = [0] * max_order
    reference_length = 0
    hypothesis_length = 0

    for reference, hypothesis in zip(references, hypotheses):
        reference_length += len(reference)
        hypothesis_length += len(hypothesis)
        for order in range(1, max_order + 1):
            ref_counts = _ngram_counts(reference, order)
            hyp_counts = _ngram_counts(hypothesis, order)
            overlap = sum(min(count, ref_counts[gram])
                          for gram, count in hyp_counts.items())
            matches[order - 1] += overlap
            possible[order - 1] += max(len(hypothesis) - order + 1, 0)

    precisions = []
    for order in range(max_order):
        if possible[order] == 0:
            precisions.append(0.0)
        elif matches[order] == 0:
            # Standard smoothing: tiny non-zero precision.
            precisions.append(1.0 / (2.0 * possible[order]))
        else:
            precisions.append(matches[order] / possible[order])

    if min(precisions) <= 0:
        return 0.0
    log_precision = sum(math.log(p) for p in precisions) / max_order

    if hypothesis_length == 0:
        return 0.0
    if hypothesis_length > reference_length:
        brevity_penalty = 1.0
    else:
        brevity_penalty = math.exp(1.0 - reference_length / hypothesis_length)
    return 100.0 * brevity_penalty * math.exp(log_precision)
