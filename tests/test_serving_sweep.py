"""Serving sweep grid, results envelope and reporting renderer."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.functional_sweep import FunctionalSweepResults
from repro.analysis.grid import GridResults
from repro.analysis.reporting import format_rows, render_results
from repro.analysis.serving_sweep import (
    CACHE_POLICIES,
    SERVING_RESULT_KEYS,
    ServingPoint,
    ServingSweepResults,
    build_serving_grid,
    evaluate_serving_point,
    run_serving_sweep,
)

QUICK = dict(num_requests=40, pool_size=8)


class TestServingGrid:
    def test_grid_cross_product(self):
        points = build_serving_grid(models=("squeezenet",),
                                    traffics=("uniform", "zipfian"),
                                    cache_policies=("none", "request_exact"),
                                    batch_sizes=(4, 8), **QUICK)
        assert len(points) == 8
        assert len(set(points)) == 8

    def test_invalid_points_fail_at_build_time(self):
        with pytest.raises(ValueError, match="unknown traffic"):
            ServingPoint(traffic="ddos")
        with pytest.raises(ValueError, match="unknown cache_policy"):
            ServingPoint(cache_policy="magic")
        with pytest.raises(ValueError, match="unknown model"):
            ServingPoint(model="resnet9000")
        with pytest.raises(ValueError):
            ServingPoint(batch_size=0)

    def test_policy_presets_are_complete(self):
        for name in CACHE_POLICIES:
            point = ServingPoint(cache_policy=name, **QUICK)
            from repro.analysis.serving_sweep import policy_for
            policy = policy_for(point)
            assert policy.entries == point.entries

    def test_shard_and_admission_axes_expand(self):
        points = build_serving_grid(models=("squeezenet",),
                                    traffics=("zipfian",),
                                    cache_policies=("request_exact",),
                                    shard_counts=(1, 2, 4),
                                    admissions=("always", "frequency"),
                                    **QUICK)
        assert len(points) == 6
        assert {point.shards for point in points} == {1, 2, 4}
        assert {point.admission for point in points} == \
            {"always", "frequency"}

    def test_admission_reaches_the_policy(self):
        from repro.analysis.serving_sweep import policy_for
        point = ServingPoint(admission="frequency", **QUICK)
        assert policy_for(point).admission == "frequency"

    def test_invalid_shard_and_admission_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            ServingPoint(shards=0, **QUICK)
        with pytest.raises(ValueError, match="admission"):
            ServingPoint(admission="magic", **QUICK)

    def test_parallel_workers_must_match_shards(self):
        # A parallel point runs one worker process per hash-ring shard;
        # any other count would change the routing layout.
        with pytest.raises(ValueError, match="parallel_workers"):
            ServingPoint(shards=2, parallel_workers=4, **QUICK)
        point = ServingPoint(shards=2, parallel_workers=2, **QUICK)
        assert point.parallel_workers == 2

    def test_parallel_grid_marks_multishard_points(self):
        points = build_serving_grid(models=("squeezenet",),
                                    traffics=("zipfian",),
                                    cache_policies=("request_exact",),
                                    shard_counts=(1, 2), parallel=True,
                                    **QUICK)
        workers = {point.shards: point.parallel_workers
                   for point in points}
        # One shard has no parallelism to express; two shards become
        # two worker processes.
        assert workers == {1: 0, 2: 2}


class TestEvaluateServingPoint:
    def test_row_schema_and_content(self):
        point = ServingPoint(cache_policy="request_exact",
                             traffic="zipfian", **QUICK)
        row = evaluate_serving_point(point)
        assert SERVING_RESULT_KEYS <= set(row)
        assert row["hit_rate"] > 0
        assert row["bit_identical_fraction"] == 1.0
        assert row["throughput_rps"] > 0
        json.dumps(row)  # JSON-safe

    def test_rows_are_reproducible(self):
        point = ServingPoint(cache_policy="request_exact", **QUICK)
        left = evaluate_serving_point(point)
        right = evaluate_serving_point(point)
        for key in ("hit_rate", "request_hit_rate", "batches",
                    "distinct_payloads", "bit_identical_fraction"):
            assert left[key] == right[key], key

    def test_no_cache_baseline_has_zero_hits(self):
        row = evaluate_serving_point(ServingPoint(cache_policy="none",
                                                  **QUICK))
        assert row["hit_rate"] == 0.0
        assert row["request_hit_rate"] == 0.0

    def test_sharded_rows_are_deterministic(self):
        # Same trace + same shard count ⇒ identical cache decisions and
        # exactness columns (wall-clock columns are measurements and
        # legitimately vary run to run).
        point = ServingPoint(cache_policy="request_exact", shards=3,
                             **QUICK)
        left = evaluate_serving_point(point)
        right = evaluate_serving_point(point)
        for key in ("hit_rate", "request_hit_rate", "batches",
                    "bit_identical_fraction", "shard_hit_rates",
                    "shard_requests", "shard_balance"):
            assert left[key] == right[key], key
        assert left["shards"] == 3
        assert left["bit_identical_fraction"] == 1.0
        assert len(left["shard_hit_rates"]) == 3
        assert sum(left["shard_requests"]) == QUICK["num_requests"]
        assert left["shard_balance"] >= 1.0

    def test_parallel_point_measures_makespan_with_identical_decisions(
            self):
        point = ServingPoint(cache_policy="request_exact", shards=2,
                             **QUICK)
        parallel_point = ServingPoint(cache_policy="request_exact",
                                      shards=2, parallel_workers=2,
                                      **QUICK)
        reference = evaluate_serving_point(point)
        row = evaluate_serving_point(parallel_point)
        assert row["parallel_workers"] == 2
        assert row["measured_makespan_s"] > 0.0
        assert row["recoveries"] == 0
        assert reference["measured_makespan_s"] == 0.0
        # Worker processes only move where each shard executes: cache
        # decisions and exactness match the in-process replay.
        for key in ("hit_rate", "batches", "bit_identical_fraction",
                    "shard_requests"):
            assert row[key] == reference[key], key

    def test_admission_column_lands_in_rows(self):
        row = evaluate_serving_point(
            ServingPoint(cache_policy="request_exact",
                         admission="frequency", **QUICK))
        assert row["admission"] == "frequency"
        # Frequency gating delays insertion, so the first sighting of
        # every key is rejected and hit rate drops vs always-admit.
        always = evaluate_serving_point(
            ServingPoint(cache_policy="request_exact", **QUICK))
        assert row["hit_rate"] <= always["hit_rate"]


class TestTieringAxes:
    """Eviction × replication × L2: the production-cache acceptance."""

    def test_tiering_axes_validate(self):
        with pytest.raises(ValueError, match="unknown eviction"):
            ServingPoint(eviction="random", **QUICK)
        with pytest.raises(ValueError, match="replicate_top"):
            ServingPoint(replicate_top=-1, **QUICK)
        with pytest.raises(ValueError, match="rotate_every"):
            ServingPoint(rotate_every=-1, **QUICK)
        with pytest.raises(ValueError, match="share memory"):
            ServingPoint(shards=2, parallel_workers=2, replicate_top=4,
                         **QUICK)
        with pytest.raises(ValueError, match="share memory"):
            ServingPoint(shards=2, parallel_workers=2, l2=True, **QUICK)
        with pytest.raises(ValueError, match="request cache"):
            ServingPoint(cache_policy="vector_trust", replicate_top=4,
                         **QUICK)
        with pytest.raises(ValueError, match="request cache"):
            ServingPoint(cache_policy="none", l2=True, **QUICK)

    def test_tiering_axes_reach_the_policy(self):
        from repro.analysis.serving_sweep import policy_for
        point = ServingPoint(eviction="slru", replicate_top=3, **QUICK)
        policy = policy_for(point)
        assert policy.eviction == "slru"
        assert policy.replicate_top == 3

    def test_grid_expands_tiering_axes_and_skips_cacheless(self):
        points = build_serving_grid(models=("squeezenet",),
                                    traffics=("zipfian",),
                                    cache_policies=("none",
                                                    "request_exact"),
                                    evictions=("none", "lru"),
                                    replicate_tops=(0, 4),
                                    shard_counts=(2,), **QUICK)
        # "none" policy has no request cache: replicated combos skip.
        assert {(p.cache_policy, p.eviction, p.replicate_top)
                for p in points} == {
            ("none", "none", 0), ("none", "lru", 0),
            ("request_exact", "none", 0), ("request_exact", "none", 4),
            ("request_exact", "lru", 0), ("request_exact", "lru", 4)}

    def test_eviction_beats_no_replacement_under_hot_set_churn(self):
        """The headline acceptance: at equal capacity on a rotating
        Zipfian hot set, LRU and segmented-LRU beat the paper's
        no-replacement cache — and stay byte-identical to the oracle."""
        churn = dict(traffic="zipfian", cache_policy="request_exact",
                     num_requests=240, pool_size=48, entries=8, ways=8,
                     rotate_every=48)
        baseline = evaluate_serving_point(ServingPoint(eviction="none",
                                                       **churn))
        assert baseline["evicted"] == 0
        for eviction in ("lru", "slru"):
            row = evaluate_serving_point(ServingPoint(eviction=eviction,
                                                      **churn))
            assert row["hit_rate"] > baseline["hit_rate"], eviction
            assert row["evicted"] > 0
            assert row["bit_identical_fraction"] == 1.0

    def test_replication_improves_shard_balance(self):
        skew = dict(traffic="zipfian", cache_policy="request_exact",
                    num_requests=120, pool_size=24, shards=2)
        affinity = evaluate_serving_point(ServingPoint(replicate_top=0,
                                                       **skew))
        replicated = evaluate_serving_point(ServingPoint(replicate_top=4,
                                                         **skew))
        assert replicated["shard_balance"] < affinity["shard_balance"]
        assert replicated["replicated"] > 0
        assert replicated["bit_identical_fraction"] == 1.0
        # Replication spreads the hot keys' requests; it must not cost
        # aggregate hit rate (every shard can answer them locally).
        assert replicated["hit_rate"] >= affinity["hit_rate"]

    def test_l2_catches_eviction_victims(self):
        tiered = dict(traffic="zipfian", cache_policy="request_exact",
                      num_requests=120, pool_size=64, entries=8, ways=8,
                      eviction="lru")
        row = evaluate_serving_point(ServingPoint(l2=True, **tiered))
        plain = evaluate_serving_point(ServingPoint(l2=False, **tiered))
        assert row["l2_hit_rate"] > 0.0
        assert plain["l2_hit_rate"] == 0.0
        assert row["bit_identical_fraction"] == 1.0
        # L1 decisions are unchanged by the tier behind them.
        assert row["hit_rate"] == plain["hit_rate"]
        assert row["evicted"] == plain["evicted"]

    def test_tiered_rows_are_reproducible(self):
        point = ServingPoint(traffic="zipfian",
                             cache_policy="request_exact",
                             num_requests=80, pool_size=24, entries=8,
                             ways=8, shards=2, eviction="lru",
                             replicate_top=4, l2=True, rotate_every=40)
        left = evaluate_serving_point(point)
        right = evaluate_serving_point(point)
        for key in ("hit_rate", "evicted", "replicated", "l2_hit_rate",
                    "shard_requests", "shard_balance",
                    "bit_identical_fraction"):
            assert left[key] == right[key], key
        assert left["bit_identical_fraction"] == 1.0


class TestServingSweepResults:
    def _small_results(self):
        points = build_serving_grid(models=("squeezenet",),
                                    traffics=("zipfian",),
                                    cache_policies=("none",
                                                    "request_exact"),
                                    **QUICK)
        return run_serving_sweep(points, processes=0)

    def test_sweep_runs_and_summarises(self):
        results = self._small_results()
        assert len(results) == 2
        assert all(not missing for missing in results.missing_keys())
        summary = results.summary()
        assert summary["points"] == 2
        assert 0 <= summary["mean_hit_rate"] <= 1
        assert "request_exact" in summary["hit_rate_by_policy"]

    def test_schema_marker_round_trip(self, tmp_path):
        results = self._small_results()
        path = tmp_path / "serving.json"
        results.save(path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == "serving-sweep"
        loaded = ServingSweepResults.load(path)
        assert loaded.rows == results.rows
        assert loaded.summary() == results.summary()

    def test_wrong_schema_rejected(self, tmp_path):
        results = self._small_results()
        path = tmp_path / "serving.json"
        results.save(path)
        with pytest.raises(ValueError, match="serving-sweep"):
            FunctionalSweepResults.load(path)

    def test_multiprocessing_matches_inprocess(self):
        points = build_serving_grid(models=("squeezenet",),
                                    traffics=("zipfian",),
                                    cache_policies=("request_exact",),
                                    seeds=(0, 1), **QUICK)
        pooled = run_serving_sweep(points, processes=2)
        serial = run_serving_sweep(points, processes=0)
        for left, right in zip(pooled.rows, serial.rows):
            assert left["hit_rate"] == right["hit_rate"]
            assert left["bit_identical_fraction"] == \
                right["bit_identical_fraction"]


class TestRenderResults:
    def test_renders_serving_rows(self):
        results = ServingSweepResults(rows=[
            {key: 0 for key in SERVING_RESULT_KEYS} | {
                "model": "squeezenet", "traffic": "zipfian",
                "cache_policy": "layered", "hit_rate": 0.5}])
        text = render_results(results)
        assert "cache_policy" in text
        assert "layered" in text
        assert "0.500" in text

    def test_renders_unknown_schema_with_row_keys(self):
        results = GridResults(rows=[{"a": 1, "b": 2.0}])
        text = render_results(results)
        assert "a" in text and "b" in text

    def test_missing_columns_render_as_dash(self):
        text = format_rows([{"a": 1}], columns=("a", "missing"))
        assert "-" in text

    def test_empty_results_render_headers(self):
        text = render_results(ServingSweepResults(rows=[]))
        assert "hit_rate" in text

    def test_column_override(self):
        results = ServingSweepResults(rows=[
            {"model": "m", "traffic": "t", "hit_rate": 0.25}])
        text = render_results(results, columns=("model", "hit_rate"))
        assert "traffic" not in text.splitlines()[0]
