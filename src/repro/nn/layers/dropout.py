"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class Dropout(Module):
    """Randomly zeroes activations with probability ``p`` during training."""

    def __init__(self, p: float = 0.5, seed: int = 0):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = np.random.default_rng(seed)
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
