"""Training harnesses and evaluation metrics."""

from repro.training.metrics import top1_accuracy, bleu_score
from repro.training.trainer import Trainer, TrainingConfig, TrainingResult

__all__ = [
    "top1_accuracy",
    "bleu_score",
    "Trainer",
    "TrainingConfig",
    "TrainingResult",
]
