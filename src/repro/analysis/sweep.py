"""Scenario sweep runner: models x dataflows x MCACHE organisations.

Layered on top of the batch simulation engine, this module expands a
grid of scenarios into :class:`SweepPoint` records, evaluates each one
with the paper-scale cycle model (hit rates adjusted for the MCACHE
geometry by simulating a representative layer trace on the vectorized
engine) and aggregates the rows into a JSON-serialisable
:class:`SweepResults`.

``run_sweep`` fans the grid out over a ``multiprocessing`` pool — the
points are independent, so the sweep scales with cores — and falls back
to in-process evaluation for tiny grids or ``processes=0``.

Typical use (see also ``examples/sweep_all.py``)::

    from repro.analysis.sweep import build_grid, run_sweep

    points = build_grid(models=["vgg13", "resnet50"],
                        dataflows=["row_stationary", "weight_stationary"],
                        organizations=[(512, 8), (1024, 16)])
    results = run_sweep(points, processes=4)
    results.save("sweep.json")
    print(results.summary())
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache
from typing import ClassVar

import numpy as np

from repro.accelerator.dataflow import make_dataflow
from repro.accelerator.mercury_sim import MercurySimulator
from repro.accelerator.workloads import build_workload, workload_to_stats
from repro.analysis.grid import (GridResults, expand_grid,
                                point_row, run_grid)
from repro.core.config import MercuryConfig
from repro.core.mcache_vec import VectorizedMCache

# Result-row schema: every dict produced by evaluate_point carries at
# least these keys (asserted by tests/test_bench_smoke.py).
RESULT_KEYS = frozenset({
    "model", "dataflow", "mcache_entries", "mcache_ways", "signature_bits",
    "baseline_cycles", "mercury_cycles", "signature_cycles", "compute_cycles",
    "speedup", "signature_fraction", "layers_on", "layers_off",
    "hit_scale", "hit_scale_raw", "elapsed_s",
})

DEFAULT_ORGANIZATIONS = ((512, 8), (1024, 16), (2048, 16))
REFERENCE_ORGANIZATION = (1024, 16)   # the paper's chosen MCACHE


@dataclass(frozen=True)
class SweepPoint:
    """One scenario: a model on a dataflow with an MCACHE organisation."""

    model: str
    dataflow: str = "row_stationary"
    mcache_entries: int = 1024
    mcache_ways: int = 16
    signature_bits: int = 20


def build_grid(models, dataflows=("row_stationary",),
               organizations=(REFERENCE_ORGANIZATION,),
               signature_bits=(20,)) -> list[SweepPoint]:
    """Cross product of the four scenario axes, in deterministic order."""
    combos = expand_grid({"model": models, "dataflow": dataflows,
                          "organization": organizations,
                          "signature_bits": signature_bits})
    return [SweepPoint(model=combo["model"], dataflow=combo["dataflow"],
                       mcache_entries=combo["organization"][0],
                       mcache_ways=combo["organization"][1],
                       signature_bits=combo["signature_bits"])
            for combo in combos]


@lru_cache(maxsize=None)
def _achieved_hit_fraction(entries: int, ways: int, num_vectors: int,
                           unique_signatures: int, seed: int) -> float:
    """Hit fraction of one organisation on a synthetic layer trace.

    The trace draws ``num_vectors`` probes from ``unique_signatures``
    random signature values — the arrival pattern of a convolution
    layer with the paper's measured similarity — and replays it on the
    vectorized engine.  Deterministic in all arguments (and cached, so
    the reference organisation is simulated once per process).
    """
    rng = np.random.default_rng(seed)
    pool = rng.integers(0, 1 << 20, size=max(unique_signatures, 1))
    trace = rng.choice(pool, size=num_vectors)
    cache = VectorizedMCache(entries=entries, ways=ways)
    simulation = cache.simulate(trace)
    return simulation.hits / num_vectors


def measure_hit_scale(entries: int, ways: int, num_vectors: int = 12544,
                      base_hit_fraction: float = 0.65,
                      seed: int = 7) -> float:
    """Relative hit rate of an MCACHE organisation vs the paper default.

    Mirrors the Figure 16 methodology: the same trace is replayed on the
    candidate and the reference (1024-entry, 16-way) organisation and
    the achieved hit fractions are ratioed, yielding the factor by which
    the workload's similarity profile is scaled.
    """
    unique = max(1, round(num_vectors * (1.0 - base_hit_fraction)))
    candidate = _achieved_hit_fraction(entries, ways, num_vectors, unique,
                                       seed)
    reference = _achieved_hit_fraction(*REFERENCE_ORGANIZATION, num_vectors,
                                       unique, seed)
    if reference == 0.0:
        return 1.0
    return candidate / reference


def evaluate_point(point: SweepPoint) -> dict:
    """Evaluate one scenario; returns a JSON-safe result row."""
    start = time.perf_counter()
    config = MercuryConfig(signature_bits=point.signature_bits,
                           mcache_entries=point.mcache_entries,
                           mcache_ways=point.mcache_ways,
                           dataflow=point.dataflow)
    raw_hit_scale = measure_hit_scale(point.mcache_entries, point.mcache_ways)
    # Clamp like Figure 16: organisations beyond the reference cannot
    # scale similarity indefinitely.  The row records the applied value.
    hit_scale = min(raw_hit_scale, 1.2)
    workload = build_workload(point.model,
                              signature_bits=point.signature_bits,
                              hit_scale=hit_scale)
    stats = workload_to_stats(workload)
    simulator = MercurySimulator(config,
                                 dataflow=make_dataflow(point.dataflow))
    report = simulator.simulate(stats, point.model,
                                apply_analytic_stoppage=True)
    row = point_row(point, {**report.to_dict(), "hit_scale": hit_scale,
                            "hit_scale_raw": raw_hit_scale},
                    started=start)
    return row


@dataclass
class SweepResults(GridResults):
    """Aggregated cycle-model rows with JSON persistence and summaries."""

    schema: ClassVar[str] = "cycle-sweep"
    result_keys: ClassVar[frozenset] = RESULT_KEYS

    # -- summaries ------------------------------------------------------
    def geomean_speedup(self, **filters) -> float:
        """Geometric-mean speedup over rows matching ``filters``."""
        return self.geomean("speedup", **filters)

    def best_per_model(self) -> dict[str, dict]:
        """Highest-speedup row for each model."""
        best: dict[str, dict] = {}
        for row in self.rows:
            current = best.get(row["model"])
            if current is None or row["speedup"] > current["speedup"]:
                best[row["model"]] = row
        return best

    def summary(self) -> dict:
        """Per-dataflow geomeans plus the overall best configurations."""
        dataflows = sorted({row["dataflow"] for row in self.rows})
        return {
            **self.base_summary(),
            "geomean_by_dataflow": {name: self.geomean_speedup(dataflow=name)
                                    for name in dataflows},
            "best_per_model": {model: {"dataflow": row["dataflow"],
                                       "mcache_entries": row["mcache_entries"],
                                       "mcache_ways": row["mcache_ways"],
                                       "speedup": row["speedup"]}
                               for model, row in self.best_per_model().items()},
        }


def run_sweep(points, processes: int | None = None) -> SweepResults:
    """Evaluate a grid of scenarios, in parallel when it pays off.

    ``processes=0`` (or a single-point grid) evaluates in-process;
    otherwise a ``multiprocessing`` pool of ``processes`` workers
    (default: all cores, capped at the number of points) maps over the
    grid.
    """
    rows, elapsed = run_grid(points, evaluate_point, processes=processes)
    return SweepResults(rows=rows, elapsed_s=elapsed)
