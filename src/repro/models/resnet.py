"""Scaled ResNet-50 / ResNet-101 / ResNet-152.

The three variants keep their relative depth ordering (152 > 101 > 50)
through the number of residual blocks per stage, with widths scaled so
the whole family trains on CPU.
"""

from __future__ import annotations

import numpy as np

from repro.models.blocks import ConvBNReLU, ResidualBlock
from repro.nn import GlobalAvgPool2D, Linear
from repro.nn.module import Module, assign_unique_layer_names

_STAGE_BLOCKS = {
    "resnet50": (2, 2, 2, 2),
    "resnet101": (2, 3, 4, 3),
    "resnet152": (3, 4, 5, 4),
}
_STAGE_CHANNELS = (8, 16, 24, 32)


class ResNet(Module):
    """A small residual network with four stages."""

    def __init__(self, blocks_per_stage: tuple, num_classes: int = 8,
                 in_channels: int = 3, seed: int = 0):
        super().__init__()
        self.stem = ConvBNReLU(in_channels, _STAGE_CHANNELS[0], 3, 1, 1, seed=seed)
        self.blocks = []
        channels = _STAGE_CHANNELS[0]
        block_seed = seed + 1
        for stage, (count, width) in enumerate(zip(blocks_per_stage,
                                                   _STAGE_CHANNELS)):
            for block_index in range(count):
                stride = 2 if (stage > 0 and block_index == 0) else 1
                self.blocks.append(ResidualBlock(channels, width, stride,
                                                 seed=block_seed))
                channels = width
                block_seed += 3
        self.pool = GlobalAvgPool2D()
        self.head = Linear(channels, num_classes, seed=block_seed)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = self.stem(x)
        for block in self.blocks:
            x = block(x)
        return self.head(self.pool(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.pool.backward(self.head.backward(grad_output))
        for block in reversed(self.blocks):
            grad = block.backward(grad)
        return self.stem.backward(grad)


def build_resnet(variant: str, num_classes: int = 8, in_channels: int = 3,
                 seed: int = 0) -> ResNet:
    if variant not in _STAGE_BLOCKS:
        raise ValueError(f"unknown ResNet variant {variant!r}")
    model = ResNet(_STAGE_BLOCKS[variant], num_classes, in_channels, seed)
    return assign_unique_layer_names(model, prefix=variant)


def build_resnet50(num_classes: int = 8, in_channels: int = 3, seed: int = 0) -> ResNet:
    return build_resnet("resnet50", num_classes, in_channels, seed)


def build_resnet101(num_classes: int = 8, in_channels: int = 3, seed: int = 0) -> ResNet:
    return build_resnet("resnet101", num_classes, in_channels, seed)


def build_resnet152(num_classes: int = 8, in_channels: int = 3, seed: int = 0) -> ResNet:
    return build_resnet("resnet152", num_classes, in_channels, seed)
