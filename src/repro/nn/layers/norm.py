"""Normalisation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter


class BatchNorm2D(Module):
    """Batch normalisation over (batch, height, width) per channel."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(num_features), name="bn_gamma")
        self.beta = Parameter(np.zeros(num_features), name="bn_beta")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = ((1 - self.momentum) * self.running_mean
                                 + self.momentum * mean)
            self.running_var = ((1 - self.momentum) * self.running_var
                                + self.momentum * var)
        else:
            mean = self.running_mean
            var = self.running_var

        mean4 = mean[None, :, None, None]
        std4 = np.sqrt(var[None, :, None, None] + self.eps)
        x_hat = (x - mean4) / std4
        out = self.gamma.value[None, :, None, None] * x_hat + \
            self.beta.value[None, :, None, None]
        self._cache = (x_hat, std4)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x_hat, std4 = self._cache
        batch, _, height, width = grad_output.shape
        count = batch * height * width

        self.gamma.grad += (grad_output * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad_output.sum(axis=(0, 2, 3))

        gamma4 = self.gamma.value[None, :, None, None]
        dx_hat = grad_output * gamma4
        sum_dx_hat = dx_hat.sum(axis=(0, 2, 3), keepdims=True)
        sum_dx_hat_xhat = (dx_hat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        grad_input = (dx_hat - sum_dx_hat / count
                      - x_hat * sum_dx_hat_xhat / count) / std4
        return grad_input


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.gamma = Parameter(np.ones(normalized_shape), name="ln_gamma")
        self.beta = Parameter(np.zeros(normalized_shape), name="ln_beta")
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        std = np.sqrt(var + self.eps)
        x_hat = (x - mean) / std
        self._cache = (x_hat, std)
        return self.gamma.value * x_hat + self.beta.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x_hat, std = self._cache
        dims = x_hat.shape[-1]

        reduce_axes = tuple(range(grad_output.ndim - 1))
        self.gamma.grad += (grad_output * x_hat).sum(axis=reduce_axes)
        self.beta.grad += grad_output.sum(axis=reduce_axes)

        dx_hat = grad_output * self.gamma.value
        sum_dx_hat = dx_hat.sum(axis=-1, keepdims=True)
        sum_dx_hat_xhat = (dx_hat * x_hat).sum(axis=-1, keepdims=True)
        grad_input = (dx_hat - sum_dx_hat / dims
                      - x_hat * sum_dx_hat_xhat / dims) / std
        return grad_input
