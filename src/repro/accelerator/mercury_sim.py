"""MERCURY accelerator simulation.

:class:`MercurySimulator` consumes the per-layer reuse statistics of a
functional run and produces the performance numbers the paper reports:
per-layer and total cycle counts split into *signature* and *layer
computation* cycles (Figure 14b / 15b), speedup over the baseline
(Figure 14c / 18), MCACHE access-type characterisation (Figure 15a) and
the layer on/off adaptivity counts (Figure 14a).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import dataclasses

from repro.accelerator.cost_model import CycleCostModel, LayerCycles
from repro.accelerator.dataflow import Dataflow, make_dataflow
from repro.core.config import MercuryConfig
from repro.core.stats import LayerReuseStats, ReuseStats


def replace_detection_off(record: LayerReuseStats) -> LayerReuseStats:
    """Copy of a record as it would look with similarity detection off."""
    clone = dataclasses.replace(record)
    clone.similarity_detection_on = False
    clone.hits = 0
    clone.mnu = record.total_vectors
    clone.mau = 0
    clone.signature_computed_vectors = 0
    clone.signature_reloaded_vectors = 0
    return clone


@dataclass
class SimulationReport:
    """Result of simulating one model's training workload."""

    model_name: str
    dataflow: str
    layer_cycles: list[LayerCycles] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def baseline_total_cycles(self) -> float:
        return sum(item.baseline_cycles for item in self.layer_cycles)

    @property
    def mercury_compute_cycles(self) -> float:
        return sum(item.compute_cycles for item in self.layer_cycles)

    @property
    def mercury_signature_cycles(self) -> float:
        return sum(item.signature_cycles for item in self.layer_cycles)

    @property
    def mercury_total_cycles(self) -> float:
        return self.mercury_compute_cycles + self.mercury_signature_cycles

    @property
    def speedup(self) -> float:
        if self.mercury_total_cycles == 0:
            return 1.0
        return self.baseline_total_cycles / self.mercury_total_cycles

    @property
    def signature_fraction(self) -> float:
        """Share of MERCURY cycles spent generating signatures."""
        total = self.mercury_total_cycles
        if total == 0:
            return 0.0
        return self.mercury_signature_cycles / total

    def cycle_breakdown(self) -> dict:
        """The two stacked-bar components of Figure 14b."""
        return {
            "baseline": {"signature": 0.0,
                         "layer_computation": self.baseline_total_cycles},
            "mercury": {"signature": self.mercury_signature_cycles,
                        "layer_computation": self.mercury_compute_cycles},
        }

    def layers_on_off(self) -> dict:
        """Counts of layers with similarity detection on/off (Figure 14a)."""
        layers_on = set()
        layers_off = set()
        for item in self.layer_cycles:
            if item.detection_on:
                layers_on.add(item.layer)
            else:
                layers_off.add(item.layer)
        # A layer that was disabled mid-run appears in both; report the
        # final state (off wins, matching the paper's end-of-training view).
        layers_on -= layers_off
        return {"on": len(layers_on), "off": len(layers_off)}

    def to_dict(self) -> dict:
        """JSON-safe summary row (consumed by the sweep runner)."""
        on_off = self.layers_on_off()
        return {
            "model": self.model_name,
            "dataflow": self.dataflow,
            "baseline_cycles": float(self.baseline_total_cycles),
            "mercury_cycles": float(self.mercury_total_cycles),
            "signature_cycles": float(self.mercury_signature_cycles),
            "compute_cycles": float(self.mercury_compute_cycles),
            "speedup": float(self.speedup),
            "signature_fraction": float(self.signature_fraction),
            "layers_on": on_off["on"],
            "layers_off": on_off["off"],
        }

    def per_layer_speedups(self) -> dict:
        """Layer name -> speedup, merging forward and backward phases."""
        by_layer: dict[str, dict[str, float]] = {}
        for item in self.layer_cycles:
            entry = by_layer.setdefault(item.layer,
                                        {"baseline": 0.0, "mercury": 0.0})
            entry["baseline"] += item.baseline_cycles
            entry["mercury"] += item.mercury_cycles
        return {layer: (values["baseline"] / values["mercury"]
                        if values["mercury"] else 1.0)
                for layer, values in by_layer.items()}


class MercurySimulator:
    """Turns functional reuse statistics into accelerator performance."""

    def __init__(self, config: MercuryConfig | None = None,
                 dataflow: Dataflow | None = None):
        self.config = config or MercuryConfig()
        self.dataflow = dataflow or make_dataflow(self.config.dataflow)
        self.cost_model = CycleCostModel(
            num_pes=self.config.num_pes,
            dataflow=self.dataflow,
            pipelined_signatures=self.config.pipelined_signatures,
            asynchronous=self.config.asynchronous_pe_sets)

    def simulate(self, stats: ReuseStats, model_name: str = "model",
                 apply_analytic_stoppage: bool = False) -> SimulationReport:
        """Produce the cycle report for one model's recorded workload.

        With ``apply_analytic_stoppage`` the simulator applies the §III-D
        profitability test to every record before costing it: when the
        signature-generation work exceeds the work saved by reuse, that
        layer/phase is treated as having similarity detection switched
        off (computed at baseline cost with no signature overhead), which
        is what the hardware's adaptation would converge to.
        """
        report = SimulationReport(model_name=model_name,
                                  dataflow=self.dataflow.name)
        for record in stats.all_records():
            if apply_analytic_stoppage and record.similarity_detection_on:
                if not self._profitable(record):
                    record = replace_detection_off(record)
            report.layer_cycles.append(self.cost_model.layer_cycles(record))
        return report

    def _profitable(self, record) -> bool:
        """§III-D test: does reuse save more MAC work than RPQ costs?"""
        signature_cost = (record.signature_computed_vectors
                          * record.signature_bits * record.vector_length)
        saved = (record.hits * record.vector_length * record.num_filters
                 * self.dataflow.reuse_efficiency)
        return saved > signature_cost

    def speedup(self, stats: ReuseStats, model_name: str = "model",
                apply_analytic_stoppage: bool = False) -> float:
        """Convenience wrapper returning only the end-to-end speedup."""
        return self.simulate(stats, model_name,
                             apply_analytic_stoppage=apply_analytic_stoppage).speedup
