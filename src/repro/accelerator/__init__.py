"""Accelerator timing models.

This package models *time*, not values: given the per-layer reuse
statistics produced by the functional engine (:mod:`repro.core`), it
computes cycle counts for the baseline Eyeriss-style accelerator and for
MERCURY under the row-stationary, weight-stationary and input-stationary
dataflows, plus the FPGA resource/power estimates of Tables II-IV.
"""

from repro.accelerator.pe import PEConfig, ProcessingElement
from repro.accelerator.signature_pipeline import (
    SignaturePipelineModel,
    pipelined_signature_cycles,
    unpipelined_signature_cycles,
)
from repro.accelerator.dataflow import (
    Dataflow,
    RowStationary,
    WeightStationary,
    InputStationary,
    make_dataflow,
)
from repro.accelerator.cost_model import CycleCostModel, LayerCycles
from repro.accelerator.baseline import BaselineAccelerator
from repro.accelerator.mercury_sim import MercurySimulator, SimulationReport
from repro.accelerator.fpga import FPGAModel, ResourceUsage, PowerBreakdown

__all__ = [
    "PEConfig",
    "ProcessingElement",
    "SignaturePipelineModel",
    "pipelined_signature_cycles",
    "unpipelined_signature_cycles",
    "Dataflow",
    "RowStationary",
    "WeightStationary",
    "InputStationary",
    "make_dataflow",
    "CycleCostModel",
    "LayerCycles",
    "BaselineAccelerator",
    "MercurySimulator",
    "SimulationReport",
    "FPGAModel",
    "ResourceUsage",
    "PowerBreakdown",
]
