"""Shared helpers for the test suite."""

from __future__ import annotations

import numpy as np


def numerical_gradient(func, array: np.ndarray, epsilon: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of a scalar function w.r.t. ``array``.

    ``func`` is called with no arguments and must read ``array`` in
    place (the helper perturbs entries one at a time).
    """
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = func()
        flat[index] = original - epsilon
        minus = func()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * epsilon)
    return grad


def relative_error(a: np.ndarray, b: np.ndarray) -> float:
    """Max relative error between two arrays."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    denom = np.maximum(np.abs(a) + np.abs(b), 1e-8)
    return float(np.max(np.abs(a - b) / denom))
